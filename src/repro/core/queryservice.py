"""O(ms) decision queries over a frame warehouse: the online tier.

The offline tier (:mod:`repro.core.warehouse`) materialises sweeps
into content-addressed frame files; this module answers the paper's
decision questions against those frames with pure column operations —
no circuit is solved, no substrate placed, no flow walked:

* ``pareto`` — the stored per-point Pareto rows, filtered by axes;
* ``rerank`` — the whole frame re-ranked under *user* FoM weights.
  The frame-level lift of the PR-3 invariant: ranking weights touch
  only ``figure_of_merit`` and ``is_winner``, so re-ranking stored
  rows equals re-running the sweep with those weights, byte for byte
  (the differential harness in ``tests/core/test_queryservice.py``
  locks this);
* ``winners`` / ``best`` — winner tallies and the single
  highest-FoM row, optionally under user weights;
* ``sensitivity`` — how the winner and FoM landscape move along one
  axis with every other axis pinned;
* ``manifest`` — what the warehouse covers.

Numerical discipline: the re-rank kernel routes ``pow`` through the
scalar ``**`` operator per element (``np.power``'s SIMD path drifts by
1 ulp on a few percent of inputs — the same reason
:mod:`repro.cost.yieldmodels` computes its powers scalar), while the
reciprocal and product steps vectorise safely (elementwise division
and multiplication are correctly rounded).  The only fast paths are
exponent ``0.0`` (``pow(x, 0) == 1.0`` exactly, even for ``0``/NaN)
and ``1.0`` (``pow(x, 1) == x`` exactly).

The HTTP surface is a stdlib ``ThreadingHTTPServer``: ``POST /query``
with a JSON body, ``GET /manifest``, ``GET /health``.  Responses are
canonical JSON (sorted keys, no whitespace, exact floats) — the same
bytes :meth:`QueryService.execute` produces in-process, which is what
the golden fixtures and the CI differential replay pin.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Mapping, Optional, Union

import numpy as np

from ..errors import SpecificationError
from .figure_of_merit import FomWeights
from .resultframe import (
    COLUMN_ORDER,
    ResultFrame,
    group_first_max,
    group_starts,
)
from .warehouse import (
    DecisionFrame,
    FrameCache,
    WarehouseManifest,
    canonical_json,
    load_warehouse,
    read_warehouse_manifest,
)

#: Every query kind the service answers.
QUERY_KINDS = (
    "manifest",
    "pareto",
    "rerank",
    "winners",
    "best",
    "sensitivity",
)

#: Axes a ``where`` filter may pin (frame columns).
FILTER_AXES = (
    "volume",
    "substrate",
    "process",
    "tolerance",
    "q_model",
    "nre",
    "weights",
    "candidate",
)

#: Axes a sensitivity query may slice along (grid axes, not candidate).
SENSITIVITY_AXES = (
    "volume",
    "substrate",
    "process",
    "tolerance",
    "q_model",
    "nre",
    "weights",
)

#: Top-level request keys the service understands.
_REQUEST_KEYS = frozenset({"kind", "where", "fom_weights", "axis"})


class QueryError(SpecificationError):
    """The query asks something the warehouse cannot answer."""


def parse_fom_weights(value) -> FomWeights:
    """User FoM weights from a request value.

    Accepts a ``perf:size:cost`` string (``paper`` = all ones), a
    three-number list, or an existing :class:`FomWeights`.
    """
    if isinstance(value, FomWeights):
        return value
    if isinstance(value, str):
        token = value.strip().lower()
        if token == "paper":
            return FomWeights()
        parts = token.split(":")
        if len(parts) != 3:
            raise QueryError(
                f"fom_weights {value!r} must be perf:size:cost "
                f"(e.g. 2:1:1) or 'paper'"
            )
        try:
            numbers = [float(part) for part in parts]
        except ValueError:
            raise QueryError(
                f"fom_weights {value!r} must be three numbers"
            ) from None
    elif isinstance(value, (list, tuple)) and len(value) == 3:
        numbers = []
        for part in value:
            if isinstance(part, bool) or not isinstance(
                part, (int, float)
            ):
                raise QueryError(
                    f"fom_weights entries must be numbers, got {part!r}"
                )
            numbers.append(float(part))
    else:
        raise QueryError(
            f"fom_weights must be 'perf:size:cost' or a three-number "
            f"list, got {value!r}"
        )
    try:
        return FomWeights(
            performance=numbers[0], size=numbers[1], cost=numbers[2]
        )
    except SpecificationError as exc:
        raise QueryError(str(exc)) from None


def _pow_column(values: np.ndarray, exponent: float) -> np.ndarray:
    """Elementwise ``value ** exponent`` with scalar-operator bits.

    ``np.power`` disagrees with Python's ``**`` by 1 ulp on a few
    percent of inputs (different libm paths), which would break the
    byte-identity contract with :func:`~repro.core.figure_of_merit.
    figure_of_merit`; the loop stays off the hot path because a re-rank
    runs it three times over one frame.  Exponents ``0.0`` and ``1.0``
    short-circuit exactly (``pow(x, 0) == 1.0`` for every double
    including NaN, ``pow(x, 1) == x``).
    """
    if exponent == 0.0:
        return np.ones(values.shape[0], dtype=np.float64)
    if exponent == 1.0:
        return values.astype(np.float64, copy=True)
    return np.asarray(
        [value**exponent for value in values.tolist()], dtype=np.float64
    )


def weighted_fom(
    performance: np.ndarray,
    size_ratio: np.ndarray,
    cost_ratio: np.ndarray,
    weights: FomWeights,
) -> np.ndarray:
    """Vector twin of :func:`~repro.core.figure_of_merit.figure_of_merit`.

    Same operations in the same order per element — scalar ``pow``
    bits, correctly-rounded elementwise reciprocal and product — so
    every output double matches the scalar formula exactly.
    """
    performance = np.asarray(performance, dtype=np.float64)
    if performance.size and not np.all(performance >= 0.0):
        raise QueryError(
            "stored performance column holds negative or NaN values; "
            "the warehouse frame is corrupt"
        )
    return (
        _pow_column(performance, weights.performance)
        * _pow_column(
            1.0 / np.asarray(size_ratio, dtype=np.float64), weights.size
        )
        * _pow_column(
            1.0 / np.asarray(cost_ratio, dtype=np.float64), weights.cost
        )
    )


def rerank_frame(
    dframe: DecisionFrame, weights: FomWeights
) -> ResultFrame:
    """The stored frame re-ranked under sweep-wide user weights.

    Byte-identical to re-running the sweep with ``weights`` as the
    sweep-wide default: points on the frame's weights *axis* (a
    non-``paper`` ``weights`` label) keep their own per-point ranking —
    exactly as :func:`~repro.core.sweep.evaluate_cell` would — while
    every ``paper``-label point is re-scored from the stored FoM
    inputs.  Winners are recomputed per cell with the first-max rule
    :func:`~repro.core.figure_of_merit.rank_buildups` uses, broadcast
    by winner *name* (the stored semantics: every row sharing the
    winning candidate's name carries the flag).
    """
    frame = dframe.frame
    fom = frame.column("figure_of_merit").copy()
    paper = frame.column("weights") == "paper"
    if np.any(paper):
        recomputed = weighted_fom(
            frame.column("performance"),
            dframe.size_ratio,
            dframe.cost_ratio,
            weights,
        )
        fom[paper] = recomputed[paper]
    n = len(frame)
    if n:
        point = dframe.point_of_row()
        starts = group_starts(point)
        lengths = np.diff(np.append(starts, n))
        first = group_first_max(point, fom)
        winner_names = np.repeat(
            frame.column("candidate")[first], lengths
        )
        is_winner = frame.column("candidate") == winner_names
    else:
        is_winner = np.zeros(0, dtype=np.bool_)
    columns = {name: frame.column(name) for name in COLUMN_ORDER}
    columns["figure_of_merit"] = fom
    columns["is_winner"] = np.asarray(is_winner, dtype=np.bool_)
    return ResultFrame.from_columns(columns)


def _validate_where(where) -> dict:
    """Normalise and validate a request's ``where`` axis filters."""
    if where is None:
        return {}
    if not isinstance(where, Mapping):
        raise QueryError("where must be an object of axis filters")
    normalised: dict = {}
    for axis, value in where.items():
        if axis not in FILTER_AXES:
            raise QueryError(
                f"unknown filter axis {axis!r} (choose from "
                f"{', '.join(FILTER_AXES)})"
            )
        if axis == "volume":
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                raise QueryError(
                    f"volume filter must be a number, got {value!r}"
                )
            normalised[axis] = float(value)
        else:
            if not isinstance(value, str):
                raise QueryError(
                    f"{axis} filter must be a string, got {value!r}"
                )
            normalised[axis] = value
    return normalised


def _where_mask(frame: ResultFrame, where: dict) -> np.ndarray:
    """Boolean row mask of the axis filters (exact equality)."""
    mask = np.ones(len(frame), dtype=bool)
    for axis, value in where.items():
        mask &= frame.column(axis) == value
    return mask


#: Re-ranked frames the service keeps per warehouse revision set.
RERANK_CACHE_CAPACITY = 16


class QueryService:
    """Answer decision queries against one warehouse directory.

    Thread-safe: the manifest is re-read per query (so an append by a
    concurrent writer becomes visible at the next query — never
    mid-response), and the merged frame is memoised keyed by the
    manifest's content-addressed frame list, backed by the
    :class:`~repro.core.warehouse.FrameCache` LRU for the per-file
    loads.  All query work on the hot path is numpy column ops.

    Re-ranked frames are memoised too: the scalar ``pow`` loop in
    :func:`rerank_frame` is the one non-vectorised step on the query
    path, and dashboards ask the same handful of weight triples over
    and over.  The LRU key is the canonical weight triple plus the
    manifest's content-addressed frame list (the same identity the
    base-frame memo uses), so a warehouse append invalidates naturally;
    hit/miss counters surface in ``GET /health``.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        cache: Optional[FrameCache] = None,
        rerank_cache_capacity: int = RERANK_CACHE_CAPACITY,
    ) -> None:
        if rerank_cache_capacity < 1:
            raise SpecificationError(
                f"rerank cache capacity must be positive, got "
                f"{rerank_cache_capacity}"
            )
        self.directory = Path(directory)
        self.cache = cache if cache is not None else FrameCache()
        self._lock = threading.Lock()
        self._memo_key: Optional[tuple] = None
        self._memo: Optional[DecisionFrame] = None
        self._rerank_capacity = rerank_cache_capacity
        self._rerank_cache: "OrderedDict[tuple, ResultFrame]" = (
            OrderedDict()
        )
        self._rerank_hits = 0
        self._rerank_misses = 0

    def state(self) -> tuple[WarehouseManifest, DecisionFrame]:
        """The current manifest and its merged decision frame."""
        manifest = read_warehouse_manifest(self.directory)
        key = tuple(
            (entry.file, entry.digest) for entry in manifest.frames
        )
        with self._lock:
            if self._memo_key == key and self._memo is not None:
                return manifest, self._memo
        dframe = load_warehouse(
            self.directory, manifest=manifest, cache=self.cache
        )
        with self._lock:
            self._memo_key = key
            self._memo = dframe
        return manifest, dframe

    def _reranked_frame(
        self,
        manifest: WarehouseManifest,
        dframe: DecisionFrame,
        weights: FomWeights,
    ) -> ResultFrame:
        """LRU-memoised :func:`rerank_frame` over the current frames."""
        key = (
            tuple(
                (entry.file, entry.digest) for entry in manifest.frames
            ),
            (weights.performance, weights.size, weights.cost),
        )
        with self._lock:
            cached = self._rerank_cache.get(key)
            if cached is not None:
                self._rerank_cache.move_to_end(key)
                self._rerank_hits += 1
                return cached
            self._rerank_misses += 1
        frame = rerank_frame(dframe, weights)
        with self._lock:
            self._rerank_cache[key] = frame
            self._rerank_cache.move_to_end(key)
            while len(self._rerank_cache) > self._rerank_capacity:
                self._rerank_cache.popitem(last=False)
        return frame

    def rerank_cache_stats(self) -> dict:
        """Hit/miss tallies of the re-rank LRU (the ``/health`` view)."""
        with self._lock:
            return {
                "hits": self._rerank_hits,
                "misses": self._rerank_misses,
                "entries": len(self._rerank_cache),
                "capacity": self._rerank_capacity,
            }

    # -- request handling ---------------------------------------------

    def execute(self, request) -> dict:
        """Answer one query request (a JSON-shaped mapping).

        Returns the JSON-ready response payload; raises
        :class:`QueryError` on any malformed or contradictory ask (the
        CLI maps that to exit 2, the HTTP layer to status 400).
        """
        if not isinstance(request, Mapping):
            raise QueryError("query request must be a JSON object")
        unknown = sorted(set(request) - _REQUEST_KEYS)
        if unknown:
            raise QueryError(
                f"unknown request keys {', '.join(map(repr, unknown))} "
                f"(allowed: {', '.join(sorted(_REQUEST_KEYS))})"
            )
        kind = request.get("kind")
        if kind not in QUERY_KINDS:
            raise QueryError(
                f"unknown query kind {kind!r} (choose from "
                f"{', '.join(QUERY_KINDS)})"
            )
        where = _validate_where(request.get("where"))
        raw_weights = request.get("fom_weights")
        axis = request.get("axis")
        if axis is not None and kind != "sensitivity":
            raise QueryError(
                f"axis applies to sensitivity queries only, not "
                f"{kind!r}"
            )
        if kind == "manifest" and (where or raw_weights is not None):
            raise QueryError(
                "manifest queries take no filters or weights"
            )
        if kind == "pareto" and raw_weights is not None:
            raise QueryError(
                "the Pareto front is weight-independent; drop "
                "fom_weights (re-rank with kind='rerank' instead)"
            )
        if kind == "rerank" and raw_weights is None:
            raise QueryError(
                "rerank needs fom_weights (perf:size:cost)"
            )

        manifest, dframe = self.state()
        if kind == "manifest":
            return self._manifest_response(manifest)

        weights = (
            parse_fom_weights(raw_weights)
            if raw_weights is not None
            else None
        )
        effective = (
            self._reranked_frame(manifest, dframe, weights)
            if weights is not None
            else dframe.frame
        )
        mask = _where_mask(effective, where)

        if kind == "pareto":
            selected = effective.filter(
                mask & effective.column("on_pareto_front")
            )
            return self._envelope(
                kind,
                manifest,
                rows=selected.to_json_columns(),
                count=len(selected),
            )
        if kind == "rerank":
            selected = effective.filter(mask)
            return self._envelope(
                kind,
                manifest,
                fom_weights=[
                    weights.performance,
                    weights.size,
                    weights.cost,
                ],
                rows=selected.to_json_columns(),
                count=len(selected),
                winner_counts=selected.winner_counts(),
                best=(
                    selected.row(selected.best_index()).as_dict()
                    if len(selected)
                    else None
                ),
            )
        if kind == "winners":
            selected = effective.filter(mask)
            points = np.unique(dframe.point_of_row()[mask])
            return self._envelope(
                kind,
                manifest,
                winner_counts=selected.winner_counts(),
                points=int(points.size),
                count=len(selected),
            )
        if kind == "best":
            selected = effective.filter(mask)
            if not len(selected):
                raise QueryError(
                    "no stored rows match the filters; loosen the "
                    "where clause"
                )
            return self._envelope(
                kind,
                manifest,
                best=selected.row(selected.best_index()).as_dict(),
            )
        return self._sensitivity_response(
            manifest, dframe, effective, mask, where, axis
        )

    def _sensitivity_response(
        self,
        manifest: WarehouseManifest,
        dframe: DecisionFrame,
        effective: ResultFrame,
        mask: np.ndarray,
        where: dict,
        axis,
    ) -> dict:
        if axis is None:
            raise QueryError(
                f"sensitivity needs an axis (choose from "
                f"{', '.join(SENSITIVITY_AXES)})"
            )
        if axis not in SENSITIVITY_AXES:
            raise QueryError(
                f"unknown sensitivity axis {axis!r} (choose from "
                f"{', '.join(SENSITIVITY_AXES)})"
            )
        if axis in where:
            raise QueryError(
                f"sensitivity slices along {axis!r}; do not also pin "
                f"it in where"
            )
        selected = effective.filter(mask)
        if not len(selected):
            raise QueryError(
                "no stored rows match the filters; loosen the where "
                "clause"
            )
        point_ids = dframe.point_of_row()[mask]
        column = selected.column(axis)
        values = list(dict.fromkeys(column.tolist()))
        slices = []
        for value in values:
            vmask = column == value
            points = np.unique(point_ids[vmask])
            if points.size != 1:
                raise QueryError(
                    f"sensitivity slice {axis}={value!r} covers "
                    f"{points.size} grid points; pin the remaining "
                    f"axes in where so each slice is one point"
                )
            sub = selected.filter(vmask)
            winners = sub.column("candidate")[sub.column("is_winner")]
            slices.append(
                {
                    "value": value,
                    "winner": str(winners[0]),
                    "fom": {
                        str(name): float(fom)
                        for name, fom in zip(
                            sub.column("candidate").tolist(),
                            sub.column("figure_of_merit").tolist(),
                        )
                    },
                }
            )
        return self._envelope(
            "sensitivity",
            manifest,
            axis=axis,
            slices=slices,
            count=len(selected),
        )

    def _envelope(
        self, kind: str, manifest: WarehouseManifest, **fields
    ) -> dict:
        return {
            "kind": kind,
            "fingerprint": manifest.fingerprint,
            "revision": manifest.revision,
            **fields,
        }

    def _manifest_response(self, manifest: WarehouseManifest) -> dict:
        return {
            "kind": "manifest",
            "fingerprint": manifest.fingerprint,
            "order_digest": manifest.order_digest,
            "revision": manifest.revision,
            "total_points": manifest.total_points,
            "covered_points": manifest.covered_points,
            "complete": manifest.complete,
            "frames": [
                {
                    "file": entry.file,
                    "digest": entry.digest,
                    "points": len(entry.indices),
                    "rows": entry.rows,
                }
                for entry in manifest.frames
            ],
            "grid_spec": manifest.grid_spec,
        }


def response_bytes(payload: dict) -> bytes:
    """A response payload as the canonical wire bytes.

    THE byte-identity surface: the HTTP server, the CLI ``query`` verb
    and the golden fixtures all serialise through here.
    """
    return (canonical_json(payload) + "\n").encode("utf-8")


class _QueryHandler(BaseHTTPRequestHandler):
    server_version = "repro-warehouse/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        """Silence per-request stderr chatter (tests and CI replay)."""

    def _send(self, status: int, payload: dict) -> None:
        body = response_bytes(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/health":
            try:
                manifest = read_warehouse_manifest(
                    self.server.service.directory
                )
            except SpecificationError as exc:
                self._send(500, {"status": "error", "error": str(exc)})
                return
            self._send(
                200,
                {
                    "status": "ok",
                    "revision": manifest.revision,
                    "rerank_cache": (
                        self.server.service.rerank_cache_stats()
                    ),
                },
            )
        elif self.path == "/manifest":
            self._dispatch({"kind": "manifest"})
        else:
            self._send(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/query":
            self._send(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = 0
        body = self.rfile.read(length)
        try:
            request = json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._send(
                400, {"error": f"request body is not valid JSON: {exc}"}
            )
            return
        self._dispatch(request)

    def _dispatch(self, request) -> None:
        try:
            payload = self.server.service.execute(request)
        except QueryError as exc:
            self._send(400, {"error": str(exc)})
        except SpecificationError as exc:
            # Warehouse-side trouble (manifest vanished, frame file
            # corrupt): the server's fault bucket, not the client's.
            self._send(500, {"error": str(exc)})
        else:
            self._send(200, payload)


class WarehouseServer(ThreadingHTTPServer):
    """One warehouse directory behind ``POST /query``.

    Thread-per-request on purpose: queries are read-only column ops
    over immutable frames, so concurrent handlers share the
    :class:`QueryService` (and its LRU) without coordination beyond
    the service's own locks.
    """

    daemon_threads = True

    def __init__(self, address, service: QueryService) -> None:
        super().__init__(address, _QueryHandler)
        self.service = service


def serve_warehouse(
    directory: Union[str, Path],
    host: str = "127.0.0.1",
    port: int = 0,
    cache: Optional[FrameCache] = None,
) -> WarehouseServer:
    """Bind a query server to a warehouse (``port=0`` = ephemeral).

    Validates the warehouse up front — a missing or corrupt manifest
    fails here, at bind time, not on the first request.  The caller
    runs ``serve_forever()`` (the CLI ``warehouse serve`` verb does).
    """
    service = QueryService(directory, cache=cache)
    read_warehouse_manifest(directory)
    return WarehouseServer((host, port), service)
