"""Incremental gather service: merge shard artifacts as they land.

``merge_shard_artifacts`` (:mod:`repro.core.sharding`) is a batch
operation — it wants every artifact up front and refuses gaps.  The
gather tier is its *streaming* counterpart: a watcher polls a shard
directory while a fleet of queue workers (:mod:`repro.core.queue`) is
still filling it, validates and concat-merges
:class:`~repro.core.resultframe.ResultFrame` payloads as each artifact
appears, and publishes a live partial report — progress, merged cache
statistics, current winner counts — long before the sweep finishes.

Safe concurrent reading is what the atomic artifact write protocol
buys: an artifact path either does not exist, is a ``.tmp``
``PENDING`` sibling (ignored by contract), or is ``COMPLETE`` and
fully readable — a poll can never observe a torn file.

* :class:`IncrementalGather` — the stateful accumulator.
  :meth:`~IncrementalGather.ingest` validates each artifact against
  the first one seen (or an expected :class:`~repro.core.queue.QueueManifest`)
  and **deduplicates by shard index**: when a lease-expiry race makes
  two workers publish the same shard, the second copy is ignored
  wholesale — frame rows *and* cache state — so merged hit/miss
  counters and entry tallies count each shard exactly once;
* :meth:`~IncrementalGather.scan` — one poll of a directory: new
  ``COMPLETE`` artifacts are ingested, ``PENDING`` temp files are
  noted for progress display, unreadable/foreign files are recorded
  (and retried next scan — a corrupt leftover is healed the moment a
  queue retry atomically replaces it);
* :meth:`~IncrementalGather.snapshot` / :meth:`~IncrementalGather.report`
  — the live partial view (canonically-sorted partial frame) and the
  final :class:`~repro.core.sweep.SweepReport`, which is assembled by
  :func:`~repro.core.sharding.merge_shard_artifacts` itself, so a
  gathered sweep is *byte-identical* to ``--merge`` and hence to the
  serial engine;
* :func:`watch_directory` — the service loop: poll, publish a
  snapshot, repeat until the grid is covered (or a timeout names what
  is missing).

CLI surface: ``repro-gps gather DIR [--watch]``; see
``docs/sweep-guide.md``, "Running a sweep as a service".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

import numpy as np

from ..errors import SpecificationError
from .queue import QueueManifest
from .resultframe import ResultFrame
from .sharding import (
    ArtifactLike,
    ShardArtifact,
    ShardMergeError,
    _load,
    _summarise_indices,
    find_pending_artifacts,
    find_shard_artifacts,
    merge_cache_states,
    merge_shard_artifacts,
)
from .sweep import SweepReport


class GatherError(SpecificationError):
    """The gather service cannot (yet) produce what was asked of it."""


@dataclass(frozen=True)
class GatherSnapshot:
    """One published view of a gather in progress.

    ``frame`` holds every gathered row, already sorted into canonical
    grid order — winner counts, Pareto masks and CSV previews are all
    meaningful on the partial data.  ``rejected`` pairs file names
    with the reason they could not be ingested this scan (they are
    retried on the next one).
    """

    total_points: Optional[int]
    covered_points: int
    shards_seen: tuple[int, ...]
    total_shards: Optional[int]
    pending: tuple[str, ...]
    rejected: tuple[tuple[str, str], ...]
    complete: bool
    frame: ResultFrame
    cache_stats: dict

    @property
    def progress(self) -> float:
        """Covered fraction of the grid (0.0 when nothing is known)."""
        if not self.total_points:
            return 0.0
        return self.covered_points / self.total_points

    def winner_counts(self) -> dict[str, int]:
        """Current winner tally over the gathered rows."""
        return self.frame.winner_counts()


class IncrementalGather:
    """Accumulate shard artifacts into a live, then final, report.

    Pass ``expected`` (a queue manifest) to pin the grid up front;
    otherwise the first ingested artifact becomes the reference every
    later one must match — the same fingerprint/order/size discipline
    as :func:`~repro.core.sharding.merge_shard_artifacts`, applied
    artifact by artifact as they arrive.
    """

    def __init__(self, expected: Optional[QueueManifest] = None) -> None:
        self._artifacts: dict[int, ShardArtifact] = {}
        self._ingested_names: set[str] = set()
        self._rejected: dict[str, str] = {}
        self._pending: tuple[str, ...] = ()
        self._covered: set[int] = set()
        self._fingerprint: Optional[str] = None
        self._order_digest: Optional[str] = None
        self._total_points: Optional[int] = None
        self._total_shards: Optional[int] = None
        if expected is not None:
            self._fingerprint = expected.fingerprint
            self._order_digest = expected.order_digest
            self._total_points = expected.total_points
            self._total_shards = expected.shards

    # -- ingestion ----------------------------------------------------

    def _check(self, artifact: ShardArtifact, source: str) -> None:
        if self._fingerprint is None:
            self._fingerprint = artifact.fingerprint
            self._order_digest = artifact.order_digest
            self._total_points = artifact.total_points
            self._total_shards = artifact.shards
            return
        if artifact.fingerprint != self._fingerprint:
            raise GatherError(
                f"{source}: artifact fingerprints a different grid "
                f"({artifact.fingerprint} vs {self._fingerprint})"
            )
        if artifact.order_digest != self._order_digest:
            raise GatherError(
                f"{source}: artifact enumerates the grid in a "
                f"different point order (order digest "
                f"{artifact.order_digest} vs {self._order_digest})"
            )
        if artifact.total_points != self._total_points:
            raise GatherError(
                f"{source}: artifact disagrees on the grid size "
                f"({artifact.total_points} vs {self._total_points} "
                f"points)"
            )
        if artifact.shards != self._total_shards:
            raise GatherError(
                f"{source}: artifact cut from a different partition "
                f"({artifact.shards} vs {self._total_shards} shards)"
            )

    def ingest(
        self, artifact: ArtifactLike, source: Optional[str] = None
    ) -> bool:
        """Add one artifact (in memory or a path) to the gather.

        Returns ``False`` — and changes *nothing* — when the shard
        index was already gathered: the lease-expiry race can make two
        workers publish the same shard, and counting its frame rows or
        its cache hit/miss state twice would corrupt the report.
        Deterministic evaluation guarantees the duplicate's content is
        identical, so dropping it is lossless.

        Raises :class:`GatherError` for an artifact that cannot belong
        to this gather (foreign grid, wrong order, wrong partition) or
        cannot be read.
        """
        if source is None:
            source = (
                str(artifact)
                if isinstance(artifact, (str, Path))
                else "<memory>"
            )
        try:
            loaded = _load(artifact)
        except ShardMergeError as exc:
            raise GatherError(str(exc)) from None
        self._check(loaded, source)
        if loaded.shard_index in self._artifacts:
            return False
        indices = set(loaded.indices)
        overlap = indices & self._covered
        if overlap:
            raise GatherError(
                f"{source}: artifact covers already-gathered point "
                f"indices {_summarise_indices(sorted(overlap))}"
            )
        self._artifacts[loaded.shard_index] = loaded
        self._covered |= indices
        return True

    def scan(self, directory: Union[str, Path]) -> int:
        """One poll of a shard directory; returns newly ingested count.

        ``COMPLETE`` artifacts not seen before are ingested;
        ``PENDING`` temp files only update the snapshot's in-flight
        list.  A file that fails to read or validate is recorded in
        ``rejected`` and *retried on the next scan* — the queue's
        retry of a failed shard atomically replaces bad bytes, at
        which point the rescan picks the artifact up.
        """
        directory = Path(directory)
        try:
            paths = find_shard_artifacts(directory)
            pending = find_pending_artifacts(directory)
        except ShardMergeError as exc:
            raise GatherError(str(exc)) from None
        self._pending = tuple(path.name for path in pending)
        self._rejected = {}
        ingested = 0
        for path in paths:
            if path.name in self._ingested_names:
                continue
            try:
                if self.ingest(path, source=path.name):
                    ingested += 1
                self._ingested_names.add(path.name)
            except GatherError as exc:
                self._rejected[path.name] = str(exc)
        return ingested

    # -- views --------------------------------------------------------

    @property
    def total_points(self) -> Optional[int]:
        """The grid size, once known (manifest or first artifact)."""
        return self._total_points

    @property
    def complete(self) -> bool:
        """True when every canonical point index has been gathered."""
        return (
            self._total_points is not None
            and len(self._covered) == self._total_points
        )

    def missing_indices(self) -> list[int]:
        """Canonical point indices not covered yet (empty when done)."""
        if self._total_points is None:
            return []
        return sorted(set(range(self._total_points)) - self._covered)

    def _partial_frame(self) -> ResultFrame:
        artifacts = [
            self._artifacts[index] for index in sorted(self._artifacts)
        ]
        if not artifacts:
            return ResultFrame.empty()
        frame = ResultFrame.concat([a.frame for a in artifacts])
        point_of_row = np.concatenate(
            [a.point_of_row() for a in artifacts]
        )
        return frame.take(np.argsort(point_of_row, kind="stable"))

    def snapshot(self) -> GatherSnapshot:
        """The current partial view (sorted frame, merged cache stats)."""
        return GatherSnapshot(
            total_points=self._total_points,
            covered_points=len(self._covered),
            shards_seen=tuple(sorted(self._artifacts)),
            total_shards=self._total_shards,
            pending=self._pending,
            rejected=tuple(sorted(self._rejected.items())),
            complete=self.complete,
            frame=self._partial_frame(),
            cache_stats=merge_cache_states(
                self._artifacts[index].cache_state
                for index in sorted(self._artifacts)
            ),
        )

    def report(self) -> SweepReport:
        """The final canonical report; the gather must be complete.

        Delegates the assembly to
        :func:`~repro.core.sharding.merge_shard_artifacts`, so the
        result carries every one of its guarantees — byte-identical
        rows to a serial in-process sweep of the same grid.
        """
        if not self.complete:
            raise GatherError(
                f"gather is incomplete: missing point indices "
                f"{_summarise_indices(self.missing_indices())} of "
                f"{self._total_points if self._total_points else '?'}"
            )
        return merge_shard_artifacts(
            [self._artifacts[index] for index in sorted(self._artifacts)]
        )


def gather_directory(
    directory: Union[str, Path],
    expected: Optional[QueueManifest] = None,
) -> SweepReport:
    """One-shot strict gather of a finished shard directory.

    Unlike the watch loop, nothing is tolerated: an unreadable or
    foreign artifact raises (with the file named), and an incomplete
    directory raises naming the missing indices.
    """
    gather = IncrementalGather(expected=expected)
    gather.scan(directory)
    snapshot = gather.snapshot()
    if snapshot.rejected:
        raise GatherError(snapshot.rejected[0][1])
    if not gather.complete and gather.total_points is None:
        raise GatherError(
            f"no shard artifacts (shard-*.json) in {directory}"
        )
    return gather.report()


def gather_directory_to_store(
    directory: Union[str, Path],
    store_dir: Union[str, Path],
    max_rows_in_memory: int,
    expected: Optional[QueueManifest] = None,
):
    """Strict one-shot gather spilled to a chunked frame store.

    The out-of-core twin of :func:`gather_directory`: the finished
    shard directory is merged through
    :func:`~repro.core.framestore.merge_artifacts_to_store`, never
    holding more than one artifact plus the store's row buffer — the
    store's row stream is byte-identical to the in-RAM gather's frame.
    With ``expected`` (a queue manifest) the first artifact is checked
    against the pinned grid identity up front, the same discipline as
    :class:`IncrementalGather`; cross-artifact consistency, duplicate
    and gap detection come from the merge itself.  Every failure is a
    :class:`GatherError` naming the cause.
    """
    from .framestore import merge_artifacts_to_store  # cycle-free here

    directory = Path(directory)
    try:
        paths = find_shard_artifacts(directory)
    except ShardMergeError as exc:
        raise GatherError(str(exc)) from None
    if not paths:
        raise GatherError(
            f"no shard artifacts (shard-*.json) in {directory}"
        )
    if expected is not None:
        try:
            first = _load(paths[0])
        except ShardMergeError as exc:
            raise GatherError(str(exc)) from None
        source = paths[0].name
        if first.fingerprint != expected.fingerprint:
            raise GatherError(
                f"{source}: artifact fingerprints a different grid "
                f"({first.fingerprint} vs {expected.fingerprint})"
            )
        if first.order_digest != expected.order_digest:
            raise GatherError(
                f"{source}: artifact enumerates the grid in a "
                f"different point order (order digest "
                f"{first.order_digest} vs {expected.order_digest})"
            )
        if first.total_points != expected.total_points:
            raise GatherError(
                f"{source}: artifact disagrees on the grid size "
                f"({first.total_points} vs {expected.total_points} "
                f"points)"
            )
        if first.shards != expected.shards:
            raise GatherError(
                f"{source}: artifact cut from a different partition "
                f"({first.shards} vs {expected.shards} shards)"
            )
        del first
    try:
        return merge_artifacts_to_store(
            paths, store_dir, max_rows_in_memory
        )
    except ShardMergeError as exc:
        raise GatherError(str(exc)) from None


def watch_directory(
    directory: Union[str, Path],
    expected: Optional[QueueManifest] = None,
    poll: float = 0.5,
    timeout: Optional[float] = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
    on_snapshot: Optional[Callable[[GatherSnapshot], None]] = None,
) -> SweepReport:
    """Watch a shard directory until the sweep is fully gathered.

    The service loop behind ``repro-gps gather DIR --watch``: scan,
    publish a snapshot (``on_snapshot`` fires after every scan —
    progress bars, dashboards, logs), sleep ``poll`` seconds, repeat.
    Returns the final canonical report the moment the last point
    lands; raises :class:`GatherError` when ``timeout`` seconds pass
    first, naming the missing indices and any rejected files.

    ``clock``/``sleep`` are injectable for tests (monotonic time and
    :func:`time.sleep` by default).
    """
    if poll <= 0:
        raise GatherError(f"poll interval must be positive, got {poll}")
    gather = IncrementalGather(expected=expected)
    deadline = None if timeout is None else clock() + timeout
    while True:
        gather.scan(directory)
        snapshot = gather.snapshot()
        if on_snapshot is not None:
            on_snapshot(snapshot)
        if gather.complete:
            return gather.report()
        if deadline is not None and clock() >= deadline:
            rejected = "".join(
                f"; rejected {name}: {reason}"
                for name, reason in snapshot.rejected
            )
            raise GatherError(
                f"gather timed out after {timeout:g}s with "
                f"{snapshot.covered_points} of "
                f"{snapshot.total_points if snapshot.total_points else '?'} "
                f"points gathered"
                + (
                    f" (missing {_summarise_indices(gather.missing_indices())})"
                    if gather.missing_indices()
                    else ""
                )
                + rejected
            )
        sleep(poll)
