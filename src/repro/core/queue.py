"""Resumable shard work queue: a sweep as a crash-tolerant service.

Cross-host sharding (:mod:`repro.core.sharding`) made a sweep's shards
portable; this module makes running them *orchestrated* instead of
hand-driven.  The coordination substrate is the shard directory
itself — a shared filesystem (or anything rsync-able) is the only
infrastructure a fleet of workers needs:

* :class:`QueueManifest` — the queue's contract, written once next to
  the shard artifacts.  It is keyed by the grid's
  :func:`~repro.core.sharding.grid_fingerprint` (plus the
  order-sensitive digest), names the partition geometry, and sets the
  lease/retry policy.  Workers refuse a manifest whose fingerprint
  does not match the grid they resolved locally, so a stale manifest
  can never silently evaluate the wrong grid;
* :class:`ShardQueue` — claim/lease bookkeeping over the directory.
  A claim is an ``O_CREAT | O_EXCL`` lease file (atomic on POSIX and
  NFSv3+), carrying owner, expiry and attempt count; an expired lease
  is stolen, so a host that died mid-shard only delays its shard by
  one lease TTL.  Completion is the atomically-written shard artifact
  itself — there is no separate "done" marker to get out of sync;
* :func:`run_queue_worker` — the worker loop: claim a shard, evaluate
  it through any :class:`~repro.core.executors.Executor`, write the
  artifact atomically, repeat until nothing is claimable.  A failed
  evaluation releases the lease with a recorded attempt, so the shard
  is retried (by this worker or any other) up to
  :attr:`~QueueManifest.max_attempts` times before it is declared
  exhausted.

Correctness never rests on the leases: they only *reduce duplicate
work*.  If two workers do evaluate the same shard (an expired lease
stolen while the original straggler finishes), both write byte-identical
artifacts via :func:`os.replace`, and the gather tier
(:mod:`repro.core.gather`) deduplicates by shard index — so the merged
report is still exactly the serial engine's output.

The CLI surface is ``repro-gps sweep --queue-init MANIFEST --shards K
[axes...]`` (write the manifest) and ``repro-gps sweep --queue
MANIFEST`` (run a worker until the queue drains); see
``docs/sweep-guide.md``, "Running a sweep as a service".
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional, Union

from ..errors import SpecificationError
from .executors import CandidateFactory, Executor
from .figure_of_merit import FomWeights
from .sharding import (
    ArtifactState,
    ShardMergeError,
    artifact_matches,
    artifact_state,
    grid_fingerprint,
    grid_order_digest,
    pending_path,
    read_shard_artifact,
    run_shard,
    shard_filename,
    write_shard_artifact,
)
from .sweep import DesignPoint, SweepGrid

#: Manifest format identifier; bumped on incompatible changes.
QUEUE_FORMAT = "repro-sweep-queue/1"


class QueueError(SpecificationError):
    """The work queue cannot be (safely) operated."""


@dataclass(frozen=True)
class QueueManifest:
    """The work queue's contract, stored next to the shard artifacts.

    Keyed by the grid's content fingerprint: a worker resolves the
    grid locally (from the manifest's ``grid_spec`` or its caller),
    and :func:`run_queue_worker` refuses to start unless fingerprint,
    order digest and point count all match — the same discipline shard
    merging applies, moved to the front of the pipeline.

    ``lease_ttl`` is the straggler bound: a worker that holds a shard
    longer than this (or died holding it) loses the lease to the next
    claimant.  ``max_attempts`` bounds retries of a shard whose
    evaluation *raises* (as opposed to a worker that dies — dying
    costs nothing but the lease).  ``grid_spec`` is an opaque,
    JSON-ready description of the grid for front-ends that rebuild it
    from the manifest (the CLI stores its axis argument strings
    there); the queue core never interprets it.
    """

    fingerprint: str
    order_digest: str
    shards: int
    total_points: int
    lease_ttl: float = 300.0
    max_attempts: int = 3
    grid_spec: Optional[dict] = None

    def __post_init__(self) -> None:
        if (
            not isinstance(self.shards, int)
            or isinstance(self.shards, bool)
            or self.shards < 1
        ):
            raise SpecificationError(
                f"queue manifest needs a positive integer shard count, "
                f"got {self.shards!r}"
            )
        if (
            not isinstance(self.total_points, int)
            or isinstance(self.total_points, bool)
            or self.total_points < 1
        ):
            raise SpecificationError(
                f"queue manifest needs a positive integer point count, "
                f"got {self.total_points!r}"
            )
        if not isinstance(self.lease_ttl, (int, float)) or isinstance(
            self.lease_ttl, bool
        ) or not self.lease_ttl > 0:
            raise SpecificationError(
                f"queue manifest needs a positive lease TTL, "
                f"got {self.lease_ttl!r}"
            )
        if (
            not isinstance(self.max_attempts, int)
            or isinstance(self.max_attempts, bool)
            or self.max_attempts < 1
        ):
            raise SpecificationError(
                f"queue manifest needs a positive attempt limit, "
                f"got {self.max_attempts!r}"
            )


def manifest_for_grid(
    grid: Union[SweepGrid, Iterable[DesignPoint]],
    shards: int,
    lease_ttl: float = 300.0,
    max_attempts: int = 3,
    grid_spec: Optional[dict] = None,
) -> QueueManifest:
    """Build the manifest of a queue over ``grid`` cut into ``shards``."""
    points = grid.points() if isinstance(grid, SweepGrid) else list(grid)
    if not points:
        raise SpecificationError("design sweep needs at least one point")
    return QueueManifest(
        fingerprint=grid_fingerprint(points),
        order_digest=grid_order_digest(points),
        shards=shards,
        total_points=len(points),
        lease_ttl=lease_ttl,
        max_attempts=max_attempts,
        grid_spec=grid_spec,
    )


def manifest_to_payload(manifest: QueueManifest) -> dict:
    """The manifest as a JSON-ready dict (see :data:`QUEUE_FORMAT`)."""
    payload = {
        "format": QUEUE_FORMAT,
        "fingerprint": manifest.fingerprint,
        "order_digest": manifest.order_digest,
        "shards": manifest.shards,
        "total_points": manifest.total_points,
        "lease_ttl": manifest.lease_ttl,
        "max_attempts": manifest.max_attempts,
    }
    if manifest.grid_spec is not None:
        payload["grid_spec"] = manifest.grid_spec
    return payload


def payload_to_manifest(
    payload: dict, source: str = "<payload>"
) -> QueueManifest:
    """Rebuild a :class:`QueueManifest` from its JSON payload."""
    if not isinstance(payload, dict):
        raise QueueError(f"{source}: queue manifest is not an object")
    declared = payload.get("format")
    if declared != QUEUE_FORMAT:
        raise QueueError(
            f"{source}: unsupported queue manifest format {declared!r} "
            f"(expected {QUEUE_FORMAT!r})"
        )
    grid_spec = payload.get("grid_spec")
    if grid_spec is not None and not isinstance(grid_spec, dict):
        raise QueueError(
            f"{source}: queue manifest grid_spec must be an object"
        )
    try:
        return QueueManifest(
            fingerprint=payload["fingerprint"],
            order_digest=payload["order_digest"],
            shards=payload["shards"],
            total_points=payload["total_points"],
            lease_ttl=payload.get("lease_ttl", 300.0),
            max_attempts=payload.get("max_attempts", 3),
            grid_spec=grid_spec,
        )
    except (KeyError, TypeError, SpecificationError) as exc:
        raise QueueError(
            f"{source}: malformed queue manifest ({exc})"
        ) from None


def _write_json_atomic(path: Path, payload: dict) -> Path:
    """Write a small JSON control file with the artifact write protocol."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = pending_path(path)
    try:
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    return path


def write_manifest(
    path: Union[str, Path], manifest: QueueManifest
) -> Path:
    """Write the queue manifest (atomically, like every artifact)."""
    return _write_json_atomic(Path(path), manifest_to_payload(manifest))


def read_manifest(path: Union[str, Path]) -> QueueManifest:
    """Load a queue manifest, with path context on every failure."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise QueueError(
            f"cannot read queue manifest {path}: {exc}"
        ) from None
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise QueueError(
            f"queue manifest {path} is not valid JSON: {exc}"
        ) from None
    return payload_to_manifest(payload, source=str(path))


def _default_owner() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


@dataclass(frozen=True)
class ShardClaim:
    """One successfully acquired lease on one shard."""

    shard_index: int
    attempt: int
    lease_path: Path
    token: str


class ShardQueue:
    """Claim/lease/retry bookkeeping over one shard directory.

    All state lives in files next to the artifacts, so any number of
    workers on any number of hosts coordinate through the directory
    alone:

    * ``lease-NNNN-of-KKKK.json`` — a live claim (owner, expiry,
      attempt, a per-claim token).  Created with ``O_CREAT | O_EXCL``,
      so exactly one claimant wins a race; an expired lease is
      deleted and re-raced;
    * ``failed-NNNN-of-KKKK.json`` — the retry ledger of a shard whose
      evaluation raised: attempt count plus the recorded errors.
      Cleared on success;
    * ``shard-NNNN-of-KKKK.json`` — the completion marker *is* the
      atomically-written artifact; a shard with a valid artifact is
      never claimable again (the ``--resume`` skip-if-valid check,
      enforced queue-wide).

    ``clock`` is injectable for tests (defaults to :func:`time.time`,
    the wall clock leases are stamped in).
    """

    def __init__(
        self,
        manifest_path: Union[str, Path],
        owner: Optional[str] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.manifest_path = Path(manifest_path)
        self.manifest = read_manifest(self.manifest_path)
        self.directory = self.manifest_path.parent
        self.owner = owner if owner is not None else _default_owner()
        self.clock = clock

    # -- paths --------------------------------------------------------

    def artifact_path(self, shard_index: int) -> Path:
        return self.directory / shard_filename(
            self.manifest.shards, shard_index
        )

    def lease_path(self, shard_index: int) -> Path:
        return self.directory / (
            f"lease-{shard_index:04d}-of-{self.manifest.shards:04d}.json"
        )

    def failure_path(self, shard_index: int) -> Path:
        return self.directory / (
            f"failed-{shard_index:04d}-of-{self.manifest.shards:04d}.json"
        )

    # -- state inspection ---------------------------------------------

    def valid_artifact(self, shard_index: int) -> bool:
        """True when the shard's artifact exists and matches the grid.

        A torn, foreign or wrong-geometry artifact does *not* count —
        the shard stays claimable and the next completion atomically
        replaces the junk.
        """
        path = self.artifact_path(shard_index)
        if artifact_state(path) is not ArtifactState.COMPLETE:
            return False
        try:
            artifact = read_shard_artifact(path)
        except ShardMergeError:
            return False
        return artifact_matches(
            artifact,
            fingerprint=self.manifest.fingerprint,
            order_digest=self.manifest.order_digest,
            shards=self.manifest.shards,
            shard_index=shard_index,
            total_points=self.manifest.total_points,
        )

    def _read_json(self, path: Path) -> Optional[dict]:
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def attempts(self, shard_index: int) -> int:
        """Recorded failed attempts of one shard (0 when none)."""
        ledger = self._read_json(self.failure_path(shard_index))
        if ledger is None:
            return 0
        try:
            return max(0, int(ledger.get("attempts", 0)))
        except (TypeError, ValueError):
            return 0

    def errors(self, shard_index: int) -> list[str]:
        """The recorded evaluation errors of one shard."""
        ledger = self._read_json(self.failure_path(shard_index))
        if ledger is None:
            return []
        errors = ledger.get("errors", [])
        return [str(error) for error in errors] if isinstance(
            errors, list
        ) else []

    def shard_state(self, shard_index: int) -> str:
        """One of ``complete | leased | exhausted | available``."""
        if self.valid_artifact(shard_index):
            return "complete"
        lease = self._read_json(self.lease_path(shard_index))
        if lease is not None and self._lease_live(lease):
            return "leased"
        if self.attempts(shard_index) >= self.manifest.max_attempts:
            return "exhausted"
        return "available"

    def _lease_live(self, lease: dict) -> bool:
        try:
            expires = float(lease.get("expires", 0.0))
        except (TypeError, ValueError):
            # An unparsable lease is treated as expired: it blocks no
            # one forever.
            return False
        return expires > self.clock()

    def outstanding(self) -> list[int]:
        """Shard indices without a valid artifact yet."""
        return [
            index
            for index in range(self.manifest.shards)
            if not self.valid_artifact(index)
        ]

    def exhausted(self) -> list[int]:
        """Shards that burned every allowed attempt without an artifact."""
        return [
            index
            for index in range(self.manifest.shards)
            if self.shard_state(index) == "exhausted"
        ]

    # -- claiming -----------------------------------------------------

    def claim(self, shard_index: int) -> Optional[ShardClaim]:
        """Try to acquire the lease on one shard.

        Returns ``None`` when the shard is complete, exhausted, held
        by a live lease, or lost to a concurrent claimant — all
        "someone else's problem" outcomes a worker simply moves past.
        """
        if not (0 <= shard_index < self.manifest.shards):
            raise QueueError(
                f"shard index {shard_index} out of range for "
                f"{self.manifest.shards} shards"
            )
        if self.valid_artifact(shard_index):
            return None
        attempt = self.attempts(shard_index) + 1
        if attempt > self.manifest.max_attempts:
            return None
        lease_path = self.lease_path(shard_index)
        existing = self._read_json(lease_path)
        if existing is not None:
            if self._lease_live(existing):
                return None
            # Expired (straggler or dead host): clear it, then race
            # for the fresh lease like everyone else.  Losing the
            # unlink race is fine — FileNotFoundError means another
            # claimant got there first.
            try:
                lease_path.unlink()
            except FileNotFoundError:
                pass
        now = self.clock()
        token = f"{self.owner}#{now!r}#{os.urandom(4).hex()}"
        payload = {
            "owner": self.owner,
            "token": token,
            "shard_index": shard_index,
            "acquired": now,
            "expires": now + self.manifest.lease_ttl,
            "attempt": attempt,
        }
        try:
            fd = os.open(
                lease_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            return None
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        return ShardClaim(
            shard_index=shard_index,
            attempt=attempt,
            lease_path=lease_path,
            token=token,
        )

    def claim_next(self) -> Optional[ShardClaim]:
        """Acquire the first claimable shard, lowest index first."""
        for shard_index in range(self.manifest.shards):
            claim = self.claim(shard_index)
            if claim is not None:
                return claim
        return None

    def _release_lease(self, claim: ShardClaim) -> None:
        """Remove the claim's lease — but only if it is still ours.

        An expired lease may have been stolen while we straggled;
        deleting the thief's lease would invite a third evaluation.
        """
        current = self._read_json(claim.lease_path)
        if current is not None and current.get("token") == claim.token:
            try:
                claim.lease_path.unlink()
            except FileNotFoundError:
                pass

    # -- outcomes -----------------------------------------------------

    def complete(self, claim: ShardClaim, artifact) -> Path:
        """Publish a finished shard: atomic artifact, then cleanup."""
        path = write_shard_artifact(
            self.artifact_path(claim.shard_index), artifact
        )
        try:
            self.failure_path(claim.shard_index).unlink()
        except FileNotFoundError:
            pass
        self._release_lease(claim)
        return path

    def fail(self, claim: ShardClaim, error: str) -> None:
        """Record a failed attempt and release the shard for retry."""
        errors = self.errors(claim.shard_index)
        errors.append(error)
        _write_json_atomic(
            self.failure_path(claim.shard_index),
            {
                "shard_index": claim.shard_index,
                "attempts": claim.attempt,
                "errors": errors[-self.manifest.max_attempts:],
            },
        )
        self._release_lease(claim)


@dataclass(frozen=True)
class QueueWorkerReport:
    """What one :func:`run_queue_worker` invocation did and saw."""

    evaluated: tuple[int, ...]
    skipped: tuple[int, ...]
    failures: tuple[tuple[int, str], ...]
    outstanding: tuple[int, ...]
    exhausted: tuple[int, ...]

    @property
    def queue_drained(self) -> bool:
        """True when every shard had a valid artifact at exit."""
        return not self.outstanding


def run_queue_worker(
    manifest_path: Union[str, Path],
    grid: Union[SweepGrid, Iterable[DesignPoint]],
    candidate_factory: CandidateFactory,
    reference: int = 0,
    weights: Optional[FomWeights] = None,
    executor: Optional[Executor] = None,
    owner: Optional[str] = None,
    clock: Callable[[], float] = time.time,
    on_event: Optional[Callable[[str, int, str], None]] = None,
) -> QueueWorkerReport:
    """Drain the queue: claim, evaluate, publish, until nothing is left.

    The worker resolves the grid locally and refuses a manifest whose
    fingerprint/order/point count disagree (:class:`QueueError`) — the
    manifest names *which* sweep this queue belongs to, it never
    defines it.  Each claimed shard runs through ``executor`` (any
    engine; serial by default) via
    :func:`~repro.core.sharding.run_shard` and is published with the
    atomic write protocol, so a worker killed at any instant leaves
    either nothing or a complete artifact — never a torn one — and its
    lease expires for the next worker to pick up.

    An evaluation that *raises* is recorded (:meth:`ShardQueue.fail`)
    and retried — immediately by this worker, or by any other — until
    the manifest's ``max_attempts`` is spent; such exhausted shards
    are reported, not raised, so one poisoned shard cannot take down
    the fleet.  ``on_event(kind, shard_index, detail)`` observes the
    loop (kinds: ``claim``, ``complete``, ``fail``, ``skip``).

    Returns a :class:`QueueWorkerReport`; ``queue_drained`` tells a
    caller whether the whole sweep (not just this worker's share) is
    done.
    """
    queue = ShardQueue(manifest_path, owner=owner, clock=clock)
    points = grid.points() if isinstance(grid, SweepGrid) else list(grid)
    if not points:
        raise SpecificationError("design sweep needs at least one point")
    fingerprint = grid_fingerprint(points)
    order_digest = grid_order_digest(points)
    if fingerprint != queue.manifest.fingerprint:
        raise QueueError(
            f"queue manifest {queue.manifest_path} fingerprints grid "
            f"{queue.manifest.fingerprint} but the resolved grid is "
            f"{fingerprint}: refusing to evaluate the wrong sweep"
        )
    if order_digest != queue.manifest.order_digest:
        raise QueueError(
            f"queue manifest {queue.manifest_path} enumerates the grid "
            f"in a different canonical order (order digest "
            f"{queue.manifest.order_digest} vs {order_digest}): "
            f"re-init the queue or fix the axis order"
        )
    if len(points) != queue.manifest.total_points:
        raise QueueError(
            f"queue manifest {queue.manifest_path} covers "
            f"{queue.manifest.total_points} points but the resolved "
            f"grid has {len(points)}"
        )
    if weights is None:
        weights = FomWeights()

    def emit(kind: str, shard_index: int, detail: str) -> None:
        if on_event is not None:
            on_event(kind, shard_index, detail)

    evaluated: list[int] = []
    failures: list[tuple[int, str]] = []
    skipped = [
        index
        for index in range(queue.manifest.shards)
        if queue.valid_artifact(index)
    ]
    for index in skipped:
        emit("skip", index, "valid artifact already present")

    while True:
        claim = queue.claim_next()
        if claim is None:
            break
        emit(
            "claim",
            claim.shard_index,
            f"attempt {claim.attempt}/{queue.manifest.max_attempts}",
        )
        try:
            artifact = run_shard(
                points,
                candidate_factory,
                shards=queue.manifest.shards,
                shard_index=claim.shard_index,
                reference=reference,
                weights=weights,
                executor=executor,
            )
        except SpecificationError:
            # A mis-specified sweep (bad geometry, empty candidate
            # list) fails identically on every retry: surface it.
            queue.fail(claim, "specification error")
            raise
        except Exception as exc:  # noqa: BLE001 — the retry ledger
            message = f"{type(exc).__name__}: {exc}"
            queue.fail(claim, message)
            failures.append((claim.shard_index, message))
            emit("fail", claim.shard_index, message)
            continue
        queue.complete(claim, artifact)
        evaluated.append(claim.shard_index)
        emit(
            "complete",
            claim.shard_index,
            f"{len(artifact.indices)} points -> "
            f"{queue.artifact_path(claim.shard_index).name}",
        )

    return QueueWorkerReport(
        evaluated=tuple(evaluated),
        skipped=tuple(skipped),
        failures=tuple(failures),
        outstanding=tuple(queue.outstanding()),
        exhausted=tuple(queue.exhausted()),
    )
