"""On-disk frame warehouse: sweeps become the offline indexing tier.

The sweep subsystem answers "what happens across the grid?" by
evaluating the grid — seconds to hours of MNA solves, placements and
flow walks.  The paper's end product, however, is a *decision* query:
"given my volume, spec and technology menu, what do I build?".  This
module materialises finished sweeps into a directory of
content-addressed **frame files** plus a small **manifest**, so the
online tier (:mod:`repro.core.queryservice`) can answer Pareto,
re-rank, winner-count, best-candidate and sensitivity queries in
milliseconds against memory-loaded columns instead of re-running
anything.

Layout of a warehouse directory::

    warehouse.json            # the manifest (atomically republished)
    frame-<digest>.json       # immutable content-addressed frame files

Design rules:

* **Frames carry the re-rank basis.**  Each
  :class:`DecisionFrame` stores the 14 ``SweepRow`` columns *plus* the
  ``size_ratio`` / ``cost_ratio`` FoM inputs — the percent columns are
  ``fl(100 * ratio)`` and cannot be inverted, so without the ratios no
  stored frame could be re-ranked byte-identically to a fresh sweep.
* **Frame files are immutable and content-addressed.**  The filename
  embeds a SHA-256 digest of the canonical JSON payload; a file, once
  published, never changes.  That is what makes the reader's LRU cache
  (:class:`FrameCache`) trivially coherent: a cached entry can never go
  stale, eviction only bounds memory.
* **Publication is atomic** (the shard-artifact discipline from
  :mod:`repro.core.queue` / :mod:`repro.core.sharding`): frame files
  and the manifest are written to a ``.tmp`` sibling, fsynced and
  renamed into place.  An append writes the new frame file *first* and
  only then republishes the manifest referencing it, so a concurrent
  reader sees either the old manifest (old frames, all readable) or
  the new one (new frame already durable) — never a torn state.
* **Appends are incremental and idempotent.**  Shard artifacts from a
  queue run (:func:`append_shard_artifact`,
  :func:`ingest_shard_directory`) land one frame file each; an
  artifact whose points are already covered is skipped, overlapping
  or foreign-grid artifacts are refused loudly.
* **Nothing in a warehouse is time-stamped or host-stamped.**  The
  same sweep produces byte-identical warehouse bytes anywhere, which
  is what lets the golden-response tests pin whole query payloads.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from ..errors import SpecificationError
from .figure_of_merit import FomWeights
from .queue import _write_json_atomic
from .resultframe import ResultFrame
from .sharding import (
    ShardArtifact,
    find_shard_artifacts,
    grid_fingerprint,
    grid_order_digest,
    read_shard_artifact,
)
from .sweep import (
    DesignPoint,
    EvaluationCache,
    SweepCell,
    SweepGrid,
    frame_for_cells,
    ratio_columns_for_cells,
    run_design_sweep,
)

#: Manifest format identifier; bumped on incompatible layout changes.
WAREHOUSE_FORMAT = "repro-warehouse/1"

#: Frame-file format identifier.
FRAME_FORMAT = "repro-warehouse-frame/1"

#: The manifest filename inside a warehouse directory.
MANIFEST_NAME = "warehouse.json"

#: The auxiliary ratio columns every decision frame carries.
RATIO_COLUMNS = ("size_ratio", "cost_ratio")


class WarehouseError(SpecificationError):
    """The warehouse cannot be (safely) read or written."""


def canonical_json(payload) -> str:
    """Deterministic JSON text: sorted keys, no whitespace, exact floats.

    The single serialisation used for content digests *and* query
    responses, so "byte-identical" means the same thing everywhere.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# -- the decision frame -----------------------------------------------


@dataclass(frozen=True, eq=False)
class DecisionFrame:
    """A warehouse frame: sweep rows plus their re-rank basis columns.

    ``frame`` holds the 14 :class:`~repro.core.resultframe.SweepRow`
    columns; ``size_ratio`` / ``cost_ratio`` are the FoM inputs the
    percent columns cannot recover.  ``indices`` / ``row_counts``
    assign runs of rows to canonical grid points, exactly like a shard
    artifact — ``row_counts[k]`` consecutive rows belong to point
    ``indices[k]``.
    """

    frame: ResultFrame
    size_ratio: np.ndarray
    cost_ratio: np.ndarray
    indices: tuple[int, ...]
    row_counts: tuple[int, ...]

    def __post_init__(self) -> None:
        for name in RATIO_COLUMNS:
            try:
                array = np.asarray(getattr(self, name), dtype=np.float64)
            except (TypeError, ValueError) as exc:
                raise WarehouseError(
                    f"decision frame {name} is not numeric: {exc}"
                ) from None
            if array.ndim != 1 or array.shape[0] != len(self.frame):
                raise WarehouseError(
                    f"decision frame {name} must be one value per row "
                    f"({len(self.frame)}), got shape {array.shape}"
                )
            if array.size and (
                not np.all(np.isfinite(array)) or np.any(array <= 0.0)
            ):
                # The re-rank kernel computes 1/ratio and raises it to
                # a power; zero or NaN here would turn a corrupt frame
                # file into silently wrong rankings.
                raise WarehouseError(
                    f"decision frame {name} values must be positive "
                    f"finite numbers"
                )
            if array.flags.writeable or array.base is not None:
                array = array.copy()
            array.flags.writeable = False
            object.__setattr__(self, name, array)
        if len(self.indices) != len(self.row_counts):
            raise WarehouseError(
                f"decision frame carries {len(self.indices)} indices "
                f"but {len(self.row_counts)} row counts"
            )
        for label, values in (
            ("index", self.indices),
            ("row count", self.row_counts),
        ):
            for value in values:
                if (
                    not isinstance(value, int)
                    or isinstance(value, bool)
                    or value < 0
                ):
                    raise WarehouseError(
                        f"decision frame {label}s must be non-negative "
                        f"integers, got {value!r}"
                    )
        if sum(self.row_counts) != len(self.frame):
            raise WarehouseError(
                f"decision frame row counts sum to "
                f"{sum(self.row_counts)} but the frame carries "
                f"{len(self.frame)} rows"
            )

    def __len__(self) -> int:
        return len(self.frame)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DecisionFrame):
            return NotImplemented
        return (
            self.frame == other.frame
            and np.array_equal(self.size_ratio, other.size_ratio)
            and np.array_equal(self.cost_ratio, other.cost_ratio)
            and self.indices == other.indices
            and self.row_counts == other.row_counts
        )

    def point_of_row(self) -> np.ndarray:
        """Canonical point index of every frame row (vectorised)."""
        return np.repeat(
            np.asarray(self.indices, dtype=np.int64),
            np.asarray(self.row_counts, dtype=np.int64),
        )


def decision_frame_for_cells(
    cells: Sequence[SweepCell], indices: Iterable[int]
) -> DecisionFrame:
    """Package evaluated cells (at the given canonical indices)."""
    cells = list(cells)
    ratios = ratio_columns_for_cells(cells)
    return DecisionFrame(
        frame=frame_for_cells(cells),
        size_ratio=np.asarray(ratios["size_ratio"], dtype=np.float64),
        cost_ratio=np.asarray(ratios["cost_ratio"], dtype=np.float64),
        indices=tuple(indices),
        row_counts=tuple(len(cell.result.rows) for cell in cells),
    )


def decision_frame_from_artifact(artifact: ShardArtifact) -> DecisionFrame:
    """Adopt a shard artifact's results as a decision frame.

    Requires the artifact's optional ``ratios`` section (every current
    :func:`~repro.core.sharding.run_shard` writes it); an old artifact
    without it cannot support byte-exact re-ranking, so the refusal
    names the fix instead of degrading silently.
    """
    if artifact.ratios is None:
        raise WarehouseError(
            f"shard artifact {artifact.shard_index}/{artifact.shards} "
            f"carries no size/cost ratio columns (written before the "
            f"warehouse tier existed?); re-run the shard to regenerate "
            f"the artifact"
        )
    return DecisionFrame(
        frame=artifact.frame,
        size_ratio=np.asarray(
            artifact.ratios["size_ratio"], dtype=np.float64
        ),
        cost_ratio=np.asarray(
            artifact.ratios["cost_ratio"], dtype=np.float64
        ),
        indices=artifact.indices,
        row_counts=artifact.row_counts,
    )


def merge_decision_frames(
    frames: Sequence[DecisionFrame],
) -> DecisionFrame:
    """Merge decision frames into canonical point order (vectorised).

    The warehouse twin of
    :func:`~repro.core.sharding.merge_shard_artifacts`' reassembly: one
    frame concat plus a stable sort on the canonical point index, with
    the ratio columns carried through the same permutation.  Frames
    must cover disjoint point sets.
    """
    frames = list(frames)
    if not frames:
        return DecisionFrame(
            frame=ResultFrame.empty(),
            size_ratio=np.empty(0, dtype=np.float64),
            cost_ratio=np.empty(0, dtype=np.float64),
            indices=(),
            row_counts=(),
        )
    if len(frames) == 1:
        return frames[0]
    pairs = [
        (index, count)
        for frame in frames
        for index, count in zip(frame.indices, frame.row_counts)
    ]
    seen = set()
    for index, _ in pairs:
        if index in seen:
            raise WarehouseError(
                f"decision frames overlap on point index {index}"
            )
        seen.add(index)
    pairs.sort()
    point_of_row = np.concatenate(
        [frame.point_of_row() for frame in frames]
    )
    order = np.argsort(point_of_row, kind="stable")
    return DecisionFrame(
        frame=ResultFrame.concat([f.frame for f in frames]).take(order),
        size_ratio=np.concatenate([f.size_ratio for f in frames])[order],
        cost_ratio=np.concatenate([f.cost_ratio for f in frames])[order],
        indices=tuple(index for index, _ in pairs),
        row_counts=tuple(count for _, count in pairs),
    )


# -- frame files ------------------------------------------------------


def frame_payload(
    dframe: DecisionFrame,
    *,
    fingerprint: str,
    order_digest: str,
    total_points: int,
) -> dict:
    """One frame file's JSON payload (exact floats, no timestamps)."""
    return {
        "format": FRAME_FORMAT,
        "fingerprint": fingerprint,
        "order_digest": order_digest,
        "total_points": total_points,
        "indices": list(dframe.indices),
        "row_counts": list(dframe.row_counts),
        "columns": dframe.frame.to_json_columns(),
        "ratios": {
            "size_ratio": dframe.size_ratio.tolist(),
            "cost_ratio": dframe.cost_ratio.tolist(),
        },
    }


def frame_digest(payload: dict) -> str:
    """Content digest of a frame payload (canonical-JSON SHA-256)."""
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()[:16]


def frame_filename(digest: str) -> str:
    """Canonical content-addressed frame filename."""
    return f"frame-{digest}.json"


def read_warehouse_frame(
    path: Union[str, Path], expected_digest: Optional[str] = None
) -> DecisionFrame:
    """Load one frame file, verifying its content digest.

    With ``expected_digest`` (what the manifest records) the payload is
    re-digested after parsing — a frame file that was tampered with,
    truncated by a non-atomic writer or mispaired with its name is a
    loud :class:`WarehouseError`, never silently wrong rows.
    """
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise WarehouseError(
            f"cannot read warehouse frame {path}: {exc}"
        ) from None
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise WarehouseError(
            f"warehouse frame {path} is not valid JSON "
            f"(truncated write?): {exc}"
        ) from None
    if not isinstance(payload, dict):
        raise WarehouseError(
            f"warehouse frame {path} is not an object"
        )
    declared = payload.get("format")
    if declared != FRAME_FORMAT:
        raise WarehouseError(
            f"{path}: unsupported frame format {declared!r} "
            f"(expected {FRAME_FORMAT!r})"
        )
    if expected_digest is not None:
        actual = frame_digest(payload)
        if actual != expected_digest:
            raise WarehouseError(
                f"{path}: frame content digest {actual} does not match "
                f"the manifest's {expected_digest} (tampered or "
                f"mispaired frame file)"
            )
    try:
        ratios = payload["ratios"]
        return DecisionFrame(
            frame=ResultFrame.from_json_columns(payload["columns"]),
            size_ratio=np.asarray(
                ratios["size_ratio"], dtype=np.float64
            ),
            cost_ratio=np.asarray(
                ratios["cost_ratio"], dtype=np.float64
            ),
            indices=tuple(payload["indices"]),
            row_counts=tuple(payload["row_counts"]),
        )
    except (KeyError, TypeError, ValueError, SpecificationError) as exc:
        raise WarehouseError(
            f"{path}: malformed warehouse frame ({exc})"
        ) from None


# -- the manifest -----------------------------------------------------


@dataclass(frozen=True)
class FrameEntry:
    """One frame file as the manifest records it."""

    file: str
    digest: str
    indices: tuple[int, ...]
    rows: int

    def __post_init__(self) -> None:
        if not isinstance(self.file, str) or "/" in self.file:
            raise WarehouseError(
                f"frame entry file must be a bare filename, got "
                f"{self.file!r}"
            )
        if not isinstance(self.rows, int) or isinstance(
            self.rows, bool
        ) or self.rows < 0:
            raise WarehouseError(
                f"frame entry rows must be a non-negative integer, "
                f"got {self.rows!r}"
            )
        for value in self.indices:
            if (
                not isinstance(value, int)
                or isinstance(value, bool)
                or value < 0
            ):
                raise WarehouseError(
                    f"frame entry indices must be non-negative "
                    f"integers, got {value!r}"
                )


@dataclass(frozen=True)
class WarehouseManifest:
    """Everything the online tier needs to know about a warehouse.

    ``revision`` increments on every append, so a reader can cheaply
    tell whether anything changed; ``frames`` lists the
    content-addressed frame files with the canonical point indices
    each covers.  ``grid_spec`` optionally carries the CLI axis tokens
    (the queue-manifest discipline) so tooling can rebuild the grid.
    """

    fingerprint: str
    order_digest: str
    total_points: int
    revision: int
    frames: tuple[FrameEntry, ...] = ()
    grid_spec: Optional[dict] = None

    def __post_init__(self) -> None:
        for label, value, minimum in (
            ("total_points", self.total_points, 1),
            ("revision", self.revision, 1),
        ):
            if (
                not isinstance(value, int)
                or isinstance(value, bool)
                or value < minimum
            ):
                raise WarehouseError(
                    f"warehouse manifest {label} must be an integer "
                    f">= {minimum}, got {value!r}"
                )
        seen: set[int] = set()
        for entry in self.frames:
            for index in entry.indices:
                if index >= self.total_points:
                    raise WarehouseError(
                        f"warehouse frame {entry.file} carries point "
                        f"index {index}, outside the "
                        f"{self.total_points}-point grid"
                    )
                if index in seen:
                    raise WarehouseError(
                        f"warehouse frames overlap on point index "
                        f"{index}"
                    )
                seen.add(index)

    @property
    def covered_points(self) -> int:
        """How many canonical grid points the frames cover."""
        return sum(len(entry.indices) for entry in self.frames)

    @property
    def complete(self) -> bool:
        """True when every grid point is covered."""
        return self.covered_points == self.total_points


def manifest_to_payload(manifest: WarehouseManifest) -> dict:
    """The manifest as a JSON-ready dict."""
    payload = {
        "format": WAREHOUSE_FORMAT,
        "fingerprint": manifest.fingerprint,
        "order_digest": manifest.order_digest,
        "total_points": manifest.total_points,
        "revision": manifest.revision,
        "frames": [
            {
                "file": entry.file,
                "digest": entry.digest,
                "indices": list(entry.indices),
                "rows": entry.rows,
            }
            for entry in manifest.frames
        ],
    }
    if manifest.grid_spec is not None:
        payload["grid_spec"] = manifest.grid_spec
    return payload


def payload_to_manifest(
    payload: dict, source: str = "<payload>"
) -> WarehouseManifest:
    """Rebuild a :class:`WarehouseManifest` from its JSON payload."""
    if not isinstance(payload, dict):
        raise WarehouseError(
            f"{source}: warehouse manifest is not an object"
        )
    declared = payload.get("format")
    if declared != WAREHOUSE_FORMAT:
        raise WarehouseError(
            f"{source}: unsupported warehouse format {declared!r} "
            f"(expected {WAREHOUSE_FORMAT!r})"
        )
    grid_spec = payload.get("grid_spec")
    if grid_spec is not None and not isinstance(grid_spec, dict):
        raise WarehouseError(
            f"{source}: warehouse manifest grid_spec must be an object"
        )
    try:
        return WarehouseManifest(
            fingerprint=payload["fingerprint"],
            order_digest=payload["order_digest"],
            total_points=payload["total_points"],
            revision=payload["revision"],
            frames=tuple(
                FrameEntry(
                    file=entry["file"],
                    digest=entry["digest"],
                    indices=tuple(entry["indices"]),
                    rows=entry["rows"],
                )
                for entry in payload.get("frames", ())
            ),
            grid_spec=grid_spec,
        )
    except (KeyError, TypeError, SpecificationError) as exc:
        raise WarehouseError(
            f"{source}: malformed warehouse manifest ({exc})"
        ) from None


def manifest_path(directory: Union[str, Path]) -> Path:
    """The manifest path inside a warehouse directory."""
    return Path(directory) / MANIFEST_NAME


def read_warehouse_manifest(
    directory: Union[str, Path],
) -> WarehouseManifest:
    """Load the manifest of a warehouse directory."""
    path = manifest_path(directory)
    try:
        with path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise WarehouseError(
            f"cannot read warehouse manifest {path}: {exc} "
            f"(is {directory} a warehouse? build one with "
            f"`repro-gps warehouse build`)"
        ) from None
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise WarehouseError(
            f"warehouse manifest {path} is not valid JSON: {exc}"
        ) from None
    return payload_to_manifest(payload, source=str(path))


def _publish_manifest(
    directory: Union[str, Path], manifest: WarehouseManifest
) -> WarehouseManifest:
    _write_json_atomic(
        manifest_path(directory), manifest_to_payload(manifest)
    )
    return manifest


# -- the writer -------------------------------------------------------


def _resolve_points(
    grid: Union[SweepGrid, Iterable[DesignPoint]],
) -> list[DesignPoint]:
    points = grid.points() if isinstance(grid, SweepGrid) else list(grid)
    if not points:
        raise WarehouseError("a warehouse needs at least one grid point")
    return points


def init_warehouse(
    directory: Union[str, Path],
    grid: Union[SweepGrid, Iterable[DesignPoint]],
    *,
    grid_spec: Optional[dict] = None,
) -> WarehouseManifest:
    """Create an empty warehouse for a grid (revision 1, no frames).

    Refuses to re-initialise an existing warehouse: frames already
    published there would silently become unreachable orphans.
    """
    points = _resolve_points(grid)
    path = manifest_path(directory)
    if path.exists():
        raise WarehouseError(
            f"warehouse already initialised at {path}; append with "
            f"--from-shards / append_shard_artifact, or build into a "
            f"fresh directory"
        )
    return _publish_manifest(
        directory,
        WarehouseManifest(
            fingerprint=grid_fingerprint(points),
            order_digest=grid_order_digest(points),
            total_points=len(points),
            revision=1,
            frames=(),
            grid_spec=grid_spec,
        ),
    )


def append_decision_frame(
    directory: Union[str, Path], dframe: DecisionFrame
) -> WarehouseManifest:
    """Publish one decision frame into an initialised warehouse.

    The frame file lands first (atomic write, content-addressed name),
    then the manifest is atomically republished with the revision
    bumped — the ordering a concurrent reader relies on.  Overlapping
    or out-of-range points are refused before anything is written.
    """
    directory = Path(directory)
    manifest = read_warehouse_manifest(directory)
    covered = {
        index for entry in manifest.frames for index in entry.indices
    }
    for index in dframe.indices:
        if index >= manifest.total_points:
            raise WarehouseError(
                f"frame carries point index {index}, outside the "
                f"{manifest.total_points}-point grid"
            )
        if index in covered:
            raise WarehouseError(
                f"warehouse already covers point index {index}; "
                f"appending the same shard twice?"
            )
    payload = frame_payload(
        dframe,
        fingerprint=manifest.fingerprint,
        order_digest=manifest.order_digest,
        total_points=manifest.total_points,
    )
    digest = frame_digest(payload)
    name = frame_filename(digest)
    _write_json_atomic(directory / name, payload)
    entry = FrameEntry(
        file=name,
        digest=digest,
        indices=dframe.indices,
        rows=len(dframe),
    )
    return _publish_manifest(
        directory,
        replace(
            manifest,
            revision=manifest.revision + 1,
            frames=manifest.frames + (entry,),
        ),
    )


def append_shard_artifact(
    directory: Union[str, Path], artifact: ShardArtifact
) -> WarehouseManifest:
    """Append one shard artifact's results to a warehouse."""
    manifest = read_warehouse_manifest(directory)
    if artifact.fingerprint != manifest.fingerprint:
        raise WarehouseError(
            f"shard artifact fingerprints grid {artifact.fingerprint}, "
            f"but the warehouse holds {manifest.fingerprint}"
        )
    if artifact.order_digest != manifest.order_digest:
        raise WarehouseError(
            f"shard artifact enumerates the grid in a different point "
            f"order (order digest {artifact.order_digest} vs "
            f"{manifest.order_digest}); re-run the shard with "
            f"identically-ordered axes"
        )
    if artifact.total_points != manifest.total_points:
        raise WarehouseError(
            f"shard artifact covers a {artifact.total_points}-point "
            f"grid, but the warehouse holds {manifest.total_points} "
            f"points"
        )
    return append_decision_frame(
        directory, decision_frame_from_artifact(artifact)
    )


def ingest_shard_directory(
    directory: Union[str, Path], shard_dir: Union[str, Path]
) -> tuple[WarehouseManifest, list[str], list[str]]:
    """Bulk-append every shard artifact from a queue/shard run.

    Initialises the warehouse from the first artifact's grid identity
    when no manifest exists yet.  Artifacts whose points are already
    fully covered are skipped (so re-running the ingest after a crash
    is idempotent); partially-overlapping or foreign artifacts are
    refused.  Returns ``(manifest, appended, skipped)`` with the
    artifact filenames in each bucket.

    Artifacts are read **one at a time** — only the artifact currently
    being appended is ever resident, so ingesting a thousand-shard run
    costs one artifact of memory, not the whole sweep.  A malformed
    artifact therefore surfaces when its turn comes, after earlier
    artifacts were already published; re-running the ingest after
    fixing it skips those and continues — the idempotency the
    covered-points check provides.
    """
    directory = Path(directory)
    paths = find_shard_artifacts(shard_dir)
    if not paths:
        raise WarehouseError(
            f"no shard artifacts (shard-*.json) in {shard_dir}"
        )
    if not manifest_path(directory).exists():
        first = read_shard_artifact(paths[0])
        _publish_manifest(
            directory,
            WarehouseManifest(
                fingerprint=first.fingerprint,
                order_digest=first.order_digest,
                total_points=first.total_points,
                revision=1,
                frames=(),
            ),
        )
        del first
    manifest = read_warehouse_manifest(directory)
    appended: list[str] = []
    skipped: list[str] = []
    for path in paths:
        artifact = read_shard_artifact(path)
        covered = {
            index for entry in manifest.frames for index in entry.indices
        }
        if set(artifact.indices) <= covered:
            # Fully covered (or legitimately empty) artifact: nothing
            # new to publish.
            skipped.append(path.name)
            continue
        manifest = append_shard_artifact(directory, artifact)
        appended.append(path.name)
    return manifest, appended, skipped


def build_warehouse(
    directory: Union[str, Path],
    grid: Union[SweepGrid, Iterable[DesignPoint]],
    candidate_factory,
    reference: int = 0,
    weights: Optional[FomWeights] = None,
    cache: Optional[EvaluationCache] = None,
    executor=None,
    grid_spec: Optional[dict] = None,
) -> WarehouseManifest:
    """Run a sweep and materialise it as a one-frame warehouse.

    The offline indexing tier in one call: evaluates the grid through
    :func:`~repro.core.sweep.run_design_sweep` (any engine — identical
    rows either way) and publishes the result.  For incremental builds
    from many hosts, run a shard queue instead and ingest the artifact
    directory (:func:`ingest_shard_directory`).
    """
    points = _resolve_points(grid)
    report = run_design_sweep(
        points,
        candidate_factory,
        reference=reference,
        weights=weights,
        cache=cache,
        executor=executor,
    )
    init_warehouse(directory, points, grid_spec=grid_spec)
    return append_decision_frame(
        directory,
        decision_frame_for_cells(report.cells, range(len(points))),
    )


# -- the reader -------------------------------------------------------


class FrameCache:
    """Thread-safe LRU of hot, memory-loaded frame files.

    Keyed by ``(resolved path, content digest)``.  Because frame files
    are immutable and content-addressed, a cached entry can *never* be
    stale — eviction exists only to bound memory.  Loads happen outside
    the lock (two threads racing the same cold frame may both parse it;
    both get correct data and one copy wins), so a slow disk read never
    blocks cache hits.
    """

    def __init__(self, capacity: int = 8) -> None:
        if (
            isinstance(capacity, bool)
            or not isinstance(capacity, int)
            or capacity < 1
        ):
            raise WarehouseError(
                f"frame cache capacity must be a positive integer, "
                f"got {capacity!r}"
            )
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple[str, str], DecisionFrame]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def get(self, path: Union[str, Path], digest: str) -> DecisionFrame:
        """The frame at ``path`` (verified against ``digest``)."""
        key = (str(Path(path).resolve()), digest)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
        dframe = read_warehouse_frame(path, expected_digest=digest)
        with self._lock:
            self.misses += 1
            if key in self._entries:
                self._entries.move_to_end(key)
                return self._entries[key]
            self._entries[key] = dframe
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return dframe

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def load_warehouse(
    directory: Union[str, Path],
    manifest: Optional[WarehouseManifest] = None,
    cache: Optional[FrameCache] = None,
) -> DecisionFrame:
    """The warehouse's frames merged into one canonical decision frame.

    Reads the manifest fresh (unless one is passed in), resolves every
    frame file — through the :class:`FrameCache` when given — and
    merges into canonical point order.  Because the manifest names
    frame files by content digest, the result is consistent even while
    a writer is appending: whichever manifest revision was read, all
    its frame files are already durable.
    """
    directory = Path(directory)
    if manifest is None:
        manifest = read_warehouse_manifest(directory)
    frames = []
    for entry in manifest.frames:
        path = directory / entry.file
        if cache is not None:
            frames.append(cache.get(path, entry.digest))
        else:
            frames.append(
                read_warehouse_frame(path, expected_digest=entry.digest)
            )
    return merge_decision_frames(frames)
