"""Pluggable execution engines for design-space sweeps.

:func:`~repro.core.sweep.run_design_sweep` separates *what* a sweep
computes (grid points through the methodology) from *how* the grid is
scheduled.  The "how" is an :class:`Executor`:

* :class:`SerialExecutor` — one process, one shared cache, grid points
  in order (the reference engine);
* :class:`MultiprocessExecutor` — shards contiguous runs of grid points
  across a ``concurrent.futures.ProcessPoolExecutor``; each worker
  fills its own :class:`~repro.core.sweep.EvaluationCache`, which is
  merged back into the caller's cache afterwards;
* :class:`ChunkedStackedExecutor` — groups the distinct filter chains of
  same-topology grid cells into chunks and assesses each chunk with one
  circuit-stacked ``(B, F, n, n)`` MNA solve
  (:func:`~repro.circuits.performance.assess_chain_many`), then runs the
  per-point evaluation against the pre-seeded cache;
* :class:`AsyncExecutor` — schedules every grid point as an asyncio
  task over a thread pool and streams cells back as they complete
  (the engine behind :func:`~repro.core.sweep.stream_design_sweep`);
* ``ShardedExecutor`` (:mod:`repro.core.sharding`) — partitions the
  grid into content-addressed shards and runs each through an inner
  engine; the same partitioning drives the cross-host shard → artifact
  → merge flow.

Every engine produces *identical* cells — the stacked solves are
bit-compatible with the per-circuit path and the process, sharded and
async engines only repartition or reorder the work — so the columnar
:class:`~repro.core.resultframe.ResultFrame` a sweep report assembles
from those cells (and its row bridge) is byte-identical whatever
engine ran, and engine choice is a pure scheduling decision:
``repro-gps sweep --engine serial|process|stacked|sharded|async
[--jobs N] [--shards K]``, or the ``REPRO_SWEEP_ENGINE`` /
``REPRO_SWEEP_JOBS`` / ``REPRO_SWEEP_SHARDS`` environment variables
for anything that does not thread an executor through explicitly (this
is how CI runs the whole test suite under the process and sharded
engines).

Only the candidate *factory* crosses process boundaries, not the
candidates: workers call it locally, so its closures (flow factories)
never need to pickle — but the factory itself must (use a module-level
function or class such as :class:`repro.gps.study.GpsSweepFactory`).

The full obligations an engine implementation takes on — completeness,
result identity with the serial engine, cache folding, factory
discipline and error transparency — are spelled out on the
:class:`Executor` protocol itself.
"""

from __future__ import annotations

import asyncio
import os
import queue
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import (
    Callable,
    Iterator,
    Optional,
    Protocol,
    Sequence,
)

from ..circuits.performance import assess_chain_many
from ..errors import SpecificationError
from .figure_of_merit import FomWeights
from .methodology import CandidateBuildUp
from .sweep import (
    DesignPoint,
    EvaluationCache,
    SweepCell,
    evaluate_cell,
    evaluate_cells,
)

#: Environment variable naming the default engine (serial when unset).
ENGINE_ENV = "REPRO_SWEEP_ENGINE"
#: Environment variable giving the default worker count.
JOBS_ENV = "REPRO_SWEEP_JOBS"
#: Environment variable giving the sharded engine's shard count.
SHARDS_ENV = "REPRO_SWEEP_SHARDS"

#: The engine names :func:`make_executor` accepts.
ENGINE_NAMES = ("serial", "process", "stacked", "sharded", "async")

CandidateFactory = Callable[
    [DesignPoint], Sequence[CandidateBuildUp]
]


class Executor(Protocol):
    """Scheduling strategy of one design-space sweep.

    The protocol contract, in full — every implementation (and any
    third-party engine plugged into
    :func:`~repro.core.sweep.run_design_sweep`) must satisfy all of it:

    * **Completeness and order** — ``run_sweep`` evaluates *every*
      point in ``points`` exactly once and returns one
      :class:`~repro.core.sweep.SweepCell` per point, in the input
      order, regardless of the internal evaluation order.
    * **Result identity** — the returned cells must equal what
      :class:`SerialExecutor` produces for the same inputs, float for
      float: the :class:`~repro.core.resultframe.ResultFrame` built
      from them must be byte-identical column for column.  Engines are
      pure scheduling decisions; they may not change *what* is
      computed (``tests/gps/test_engine_matrix.py`` pins frame/row
      byte identity on the GPS study for every engine × scenario).
    * **Cache folding** — any worker- or batch-local
      :class:`~repro.core.sweep.EvaluationCache` state must be folded
      back into the ``cache`` argument (via
      :meth:`~repro.core.sweep.EvaluationCache.merge` or by seeding)
      before ``run_sweep`` returns, so ``cache.stats()`` always tallies
      the whole sweep.  Hit/miss *counts* may legitimately differ
      between engines (cold worker caches, pre-seeding); cached
      *values* may not.
    * **Factory discipline** — ``candidate_factory`` may be called at
      most once per point per process, from whichever process evaluates
      that point; when the factory declares ``volume_invariant = True``
      (see :func:`~repro.core.sweep.evaluate_cells`) an engine may
      instead call it once per *volume family* and share the result
      across the family's points.  Engines that cross process
      boundaries ship the factory itself (it must pickle), never the
      candidates it returns.
    * **Error transparency** — exceptions raised by the factory or the
      evaluation propagate to the caller; an engine must not swallow a
      failed point and return a partial result.
    """

    name: str

    def run_sweep(
        self,
        points: Sequence[DesignPoint],
        candidate_factory: CandidateFactory,
        reference: int,
        weights: FomWeights,
        cache: EvaluationCache,
    ) -> list[SweepCell]:
        """Evaluate all grid points and return their cells in order."""
        ...


class SerialExecutor:
    """The reference engine: in-process, in-order, one shared cache."""

    name = "serial"

    def run_sweep(
        self,
        points: Sequence[DesignPoint],
        candidate_factory: CandidateFactory,
        reference: int,
        weights: FomWeights,
        cache: EvaluationCache,
    ) -> list[SweepCell]:
        return evaluate_cells(
            points, candidate_factory, reference, weights, cache
        )

    def iter_cells(
        self,
        points: Sequence[DesignPoint],
        candidate_factory: CandidateFactory,
        reference: int,
        weights: FomWeights,
        cache: EvaluationCache,
    ):
        """Stream ``(index, cell)`` pairs in canonical order.

        The streaming surface constant-memory consumers (the chunked
        frame store's :func:`~repro.core.framestore.spill_design_sweep`)
        rely on: one point is evaluated per step, so no cell outlives
        its yield.  Both fills produce bit-identical cells point by
        point, and the batched fill's :meth:`EvaluationCache.count_reuse`
        discipline keeps per-point cache stats equal to the whole-run
        tally — so the streamed sweep matches :meth:`run_sweep` rows
        *and* stats exactly.
        """
        for index, point in enumerate(points):
            (cell,) = evaluate_cells(
                [point], candidate_factory, reference, weights, cache
            )
            yield index, cell


def _split_runs(points: Sequence[DesignPoint], parts: int) -> list[list]:
    """Split points into at most ``parts`` contiguous, near-even runs.

    ``parts`` is clamped down to ``len(points)`` (no empty runs are
    produced), but a non-positive request is a caller bug — silently
    clamping it up would hide a broken worker-count calculation — so it
    raises :class:`ValueError`.

    Raises
    ------
    ValueError
        If ``parts`` is not a positive integer.
    """
    if parts <= 0:
        raise ValueError(
            f"cannot split {len(points)} points into {parts} runs; "
            "parts must be a positive integer"
        )
    parts = max(1, min(parts, len(points)))
    base, extra = divmod(len(points), parts)
    runs = []
    start = 0
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        runs.append(list(points[start:stop]))
        start = stop
    return runs


def _process_worker(payload):
    """Evaluate one run of grid points in a worker process.

    Returns the cells plus the worker-local cache so the parent can
    merge hit/miss stats and reuse the computed sub-results.
    """
    points, candidate_factory, reference, weights = payload
    cache = EvaluationCache()
    cells = evaluate_cells(
        points, candidate_factory, reference, weights, cache
    )
    return cells, cache


class MultiprocessExecutor:
    """Shard contiguous runs of grid points across worker processes.

    Each worker evaluates its run with a fresh cache (memoisation still
    applies *within* a run); the parent merges every worker cache into
    the sweep's cache, so the final stats are the whole-sweep tally.
    The candidate factory must be picklable; results (cells and cached
    sub-results) are plain dataclasses and always are.
    """

    name = "process"

    def __init__(self, jobs: Optional[int] = None) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise SpecificationError(
                f"process engine needs at least 1 worker, got {jobs}"
            )
        self.jobs = jobs

    def run_sweep(
        self,
        points: Sequence[DesignPoint],
        candidate_factory: CandidateFactory,
        reference: int,
        weights: FomWeights,
        cache: EvaluationCache,
    ) -> list[SweepCell]:
        runs = _split_runs(points, self.jobs)
        payloads = [
            (run, candidate_factory, reference, weights) for run in runs
        ]
        with ProcessPoolExecutor(max_workers=len(runs)) as pool:
            outcomes = list(pool.map(_process_worker, payloads))
        cells: list[SweepCell] = []
        for run_cells, worker_cache in outcomes:
            cells.extend(run_cells)
            cache.merge(worker_cache)
        return cells


class ChunkedStackedExecutor:
    """Batch same-topology grid cells into circuit-stacked MNA solves.

    The MNA-heavy step of a sweep is the filter-chain assessment, and a
    grid produces many chains that share filter specifications (hence
    circuit topology) while differing only in element values.  This
    engine collects every *distinct, uncached* chain across the whole
    grid up front, assesses them in chunks through
    :func:`~repro.circuits.performance.assess_chain_many` — one stacked
    ``(B, F, n, n)`` solve per spec per chunk — seeds the cache, and
    then runs the ordinary per-point evaluation, which now hits the
    cache for every chain.
    """

    name = "stacked"

    def __init__(self, chunk_size: int = 32) -> None:
        if chunk_size < 1:
            raise SpecificationError(
                f"stacked engine needs a positive chunk size, got "
                f"{chunk_size}"
            )
        self.chunk_size = chunk_size

    def run_sweep(
        self,
        points: Sequence[DesignPoint],
        candidate_factory: CandidateFactory,
        reference: int,
        weights: FomWeights,
        cache: EvaluationCache,
    ) -> list[SweepCell]:
        per_point = [list(candidate_factory(point)) for point in points]

        pending: dict[str, list] = {}
        for candidates in per_point:
            for candidate in candidates:
                if (
                    candidate.fixed_performance is not None
                    or not candidate.filter_assignments
                ):
                    continue
                key = EvaluationCache.performance_key(
                    candidate.filter_assignments
                )
                if cache.has_performance(key) or key in pending:
                    continue
                pending[key] = candidate.filter_assignments

        keys = list(pending)
        for start in range(0, len(keys), self.chunk_size):
            chunk = keys[start : start + self.chunk_size]
            chains = assess_chain_many([pending[key] for key in chunk])
            for key, chain in zip(chunk, chains):
                cache.seed_performance(key, chain)

        return [
            evaluate_cell(point, candidates, reference, weights, cache)
            for point, candidates in zip(points, per_point)
        ]


class _SweepAbandoned(Exception):
    """Internal: a queued evaluation noticed its consumer went away."""


class AsyncExecutor:
    """Evaluate independent grid points concurrently with asyncio.

    Grid points are embarrassingly parallel, so the engine schedules
    each one as an asyncio task that runs the evaluation on a thread
    pool (the MNA-heavy part spends its time in LAPACK, which releases
    the GIL) and gathers the cells back into canonical order.  Rows
    are identical to the serial engine's: evaluation is deterministic
    per point, so only the shared cache's hit/miss *tally* can vary
    with completion order — two tasks racing on a cold key both
    compute the same value — which the :class:`Executor` contract
    explicitly permits.

    The engine is also the streaming backend of
    :func:`~repro.core.sweep.stream_design_sweep`:

    * :meth:`iter_cells` yields ``(canonical_index, cell)`` pairs in
      *completion* order while the sweep is still running;
    * ``progress`` (a ``callback(done, total, cell)``) fires after
      every completed point, whichever entry point drove the sweep.
    """

    name = "async"

    def __init__(
        self,
        jobs: Optional[int] = None,
        progress: Optional[Callable[[int, int, SweepCell], None]] = None,
    ) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise SpecificationError(
                f"async engine needs at least 1 concurrent task, "
                f"got {jobs}"
            )
        self.jobs = jobs
        self.progress = progress

    def _evaluate(
        self,
        index: int,
        point: DesignPoint,
        candidate_factory: CandidateFactory,
        reference: int,
        weights: FomWeights,
        cache: EvaluationCache,
        cancel: Optional[threading.Event],
    ) -> tuple[int, SweepCell]:
        if cancel is not None and cancel.is_set():
            raise _SweepAbandoned()
        cell = evaluate_cell(
            point, candidate_factory(point), reference, weights, cache
        )
        return index, cell

    async def _run(
        self,
        points: Sequence[DesignPoint],
        candidate_factory: CandidateFactory,
        reference: int,
        weights: FomWeights,
        cache: EvaluationCache,
        emit: Optional[Callable[[int, SweepCell], None]],
        cancel: Optional[threading.Event] = None,
    ) -> list[SweepCell]:
        loop = asyncio.get_running_loop()
        cells: list[Optional[SweepCell]] = [None] * len(points)
        done = 0
        pool = ThreadPoolExecutor(max_workers=self.jobs)
        try:
            futures = [
                loop.run_in_executor(
                    pool,
                    self._evaluate,
                    index,
                    point,
                    candidate_factory,
                    reference,
                    weights,
                    cache,
                    cancel,
                )
                for index, point in enumerate(points)
            ]
            try:
                for future in asyncio.as_completed(futures):
                    index, cell = await future
                    cells[index] = cell
                    done += 1
                    if self.progress is not None:
                        self.progress(done, len(points), cell)
                    if emit is not None:
                        emit(index, cell)
            except BaseException:
                # A failed point must not wait for the whole queue:
                # drop everything not yet started before re-raising
                # (error transparency with a bounded exit).
                for future in futures:
                    future.cancel()
                raise
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        return cells

    def run_sweep(
        self,
        points: Sequence[DesignPoint],
        candidate_factory: CandidateFactory,
        reference: int,
        weights: FomWeights,
        cache: EvaluationCache,
    ) -> list[SweepCell]:
        return asyncio.run(
            self._run(
                points, candidate_factory, reference, weights, cache, None
            )
        )

    def iter_cells(
        self,
        points: Sequence[DesignPoint],
        candidate_factory: CandidateFactory,
        reference: int,
        weights: FomWeights,
        cache: EvaluationCache,
    ) -> Iterator[tuple[int, SweepCell]]:
        """Yield ``(canonical_index, cell)`` in completion order.

        The asyncio loop runs on a helper thread and pushes completed
        cells through a queue, so the caller iterates an ordinary
        synchronous generator while evaluation continues in the
        background.  Exceptions from the factory or the evaluation are
        re-raised here; not-yet-started points are dropped first, so
        the exit is bounded by the in-flight points only.  Closing the
        generator early (``break``) likewise abandons the queued
        remainder of the sweep instead of silently finishing it.
        """
        results: queue.SimpleQueue = queue.SimpleQueue()
        abandoned = threading.Event()

        def _drive() -> None:
            try:
                asyncio.run(
                    self._run(
                        points,
                        candidate_factory,
                        reference,
                        weights,
                        cache,
                        lambda index, cell: results.put(
                            ("cell", index, cell)
                        ),
                        cancel=abandoned,
                    )
                )
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                results.put(("error", exc, None))
            else:
                results.put(("done", None, None))

        thread = threading.Thread(
            target=_drive, name="repro-async-sweep", daemon=True
        )
        thread.start()
        try:
            while True:
                kind, first, second = results.get()
                if kind == "cell":
                    yield first, second
                elif kind == "error":
                    raise first
                else:
                    return
        finally:
            abandoned.set()
            thread.join()


def _int_env(name: str) -> Optional[int]:
    """Parse an integer environment variable (None when unset/empty)."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise SpecificationError(
            f"{name} must be an integer, got {raw!r}"
        ) from None


def shards_from_env() -> Optional[int]:
    """The ``REPRO_SWEEP_SHARDS`` shard count, ``None`` when unset.

    The CLI uses this to honour the environment default on paths that
    need the *count* itself (cross-host ``--shard-index`` runs), not
    just an engine built from it.
    """
    return _int_env(SHARDS_ENV)


def make_executor(
    name: str,
    jobs: Optional[int] = None,
    shards: Optional[int] = None,
) -> Executor:
    """Build an engine by name (one of :data:`ENGINE_NAMES`).

    ``jobs`` applies to the process engine (worker count) and the
    async engine (concurrent tasks); ``shards`` to the sharded engine
    (partition count).  Both default to the CPU count.
    """
    normalized = (name or "serial").strip().lower()
    if normalized == "serial":
        return SerialExecutor()
    if normalized == "process":
        return MultiprocessExecutor(jobs)
    if normalized == "stacked":
        return ChunkedStackedExecutor()
    if normalized == "async":
        return AsyncExecutor(jobs)
    if normalized == "sharded":
        from .sharding import ShardedExecutor  # cycle-free at import

        return ShardedExecutor(shards)
    raise SpecificationError(
        f"unknown sweep engine {name!r} "
        f"(choose from {', '.join(ENGINE_NAMES)})"
    )


def resolve_executor(
    engine: Optional[str] = None,
    jobs: Optional[int] = None,
    shards: Optional[int] = None,
) -> Executor:
    """Merge explicit engine choices with the environment defaults.

    Each argument independently falls back to its environment variable
    when not given (``REPRO_SWEEP_ENGINE`` / ``REPRO_SWEEP_JOBS`` /
    ``REPRO_SWEEP_SHARDS``), so ``--jobs 4`` under an exported
    ``REPRO_SWEEP_ENGINE=process`` runs four process workers, and
    ``--engine process`` alone picks up the environment's worker
    count.
    """
    if engine is None:
        engine = os.environ.get(ENGINE_ENV, "serial")
    if jobs is None:
        jobs = _int_env(JOBS_ENV)
    if shards is None:
        shards = _int_env(SHARDS_ENV)
    return make_executor(engine, jobs, shards)


def default_executor() -> Executor:
    """The engine named by the environment, serial when unset.

    ``REPRO_SWEEP_ENGINE`` selects the engine, ``REPRO_SWEEP_JOBS``
    the process/async worker count and ``REPRO_SWEEP_SHARDS`` the
    sharded engine's partition count — the hook that lets CI run the
    whole test suite under a non-default engine without touching call
    sites.
    """
    return resolve_executor()
