"""Pluggable execution engines for design-space sweeps.

:func:`~repro.core.sweep.run_design_sweep` separates *what* a sweep
computes (grid points through the methodology) from *how* the grid is
scheduled.  The "how" is an :class:`Executor`:

* :class:`SerialExecutor` — one process, one shared cache, grid points
  in order (the reference engine);
* :class:`MultiprocessExecutor` — shards contiguous runs of grid points
  across a ``concurrent.futures.ProcessPoolExecutor``; each worker
  fills its own :class:`~repro.core.sweep.EvaluationCache`, which is
  merged back into the caller's cache afterwards;
* :class:`ChunkedStackedExecutor` — groups the distinct filter chains of
  same-topology grid cells into chunks and assesses each chunk with one
  circuit-stacked ``(B, F, n, n)`` MNA solve
  (:func:`~repro.circuits.performance.assess_chain_many`), then runs the
  per-point evaluation against the pre-seeded cache.

Every engine produces *identical* sweep rows — the stacked solves are
bit-compatible with the per-circuit path and the process engine only
repartitions the work — so engine choice is a pure scheduling decision:
``repro-gps sweep --engine serial|process|stacked [--jobs N]``, or the
``REPRO_SWEEP_ENGINE`` / ``REPRO_SWEEP_JOBS`` environment variables for
anything that does not thread an executor through explicitly (this is
how CI runs the whole test suite under the process engine).

Only the candidate *factory* crosses process boundaries, not the
candidates: workers call it locally, so its closures (flow factories)
never need to pickle — but the factory itself must (use a module-level
function or class such as :class:`repro.gps.study.GpsSweepFactory`).

The full obligations an engine implementation takes on — completeness,
result identity with the serial engine, cache folding, factory
discipline and error transparency — are spelled out on the
:class:`Executor` protocol itself.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Optional, Protocol, Sequence

from ..circuits.performance import assess_chain_many
from ..errors import SpecificationError
from .figure_of_merit import FomWeights
from .methodology import CandidateBuildUp
from .sweep import (
    DesignPoint,
    EvaluationCache,
    SweepCell,
    evaluate_cell,
    evaluate_cells,
)

#: Environment variable naming the default engine (serial when unset).
ENGINE_ENV = "REPRO_SWEEP_ENGINE"
#: Environment variable giving the default worker count.
JOBS_ENV = "REPRO_SWEEP_JOBS"

#: The engine names :func:`make_executor` accepts.
ENGINE_NAMES = ("serial", "process", "stacked")

CandidateFactory = Callable[
    [DesignPoint], Sequence[CandidateBuildUp]
]


class Executor(Protocol):
    """Scheduling strategy of one design-space sweep.

    The protocol contract, in full — every implementation (and any
    third-party engine plugged into
    :func:`~repro.core.sweep.run_design_sweep`) must satisfy all of it:

    * **Completeness and order** — ``run_sweep`` evaluates *every*
      point in ``points`` exactly once and returns one
      :class:`~repro.core.sweep.SweepCell` per point, in the input
      order, regardless of the internal evaluation order.
    * **Result identity** — the returned cells must equal what
      :class:`SerialExecutor` produces for the same inputs, float for
      float.  Engines are pure scheduling decisions; they may not
      change *what* is computed (``tests/gps/test_engines.py`` pins
      row-for-row byte identity on the GPS study).
    * **Cache folding** — any worker- or batch-local
      :class:`~repro.core.sweep.EvaluationCache` state must be folded
      back into the ``cache`` argument (via
      :meth:`~repro.core.sweep.EvaluationCache.merge` or by seeding)
      before ``run_sweep`` returns, so ``cache.stats()`` always tallies
      the whole sweep.  Hit/miss *counts* may legitimately differ
      between engines (cold worker caches, pre-seeding); cached
      *values* may not.
    * **Factory discipline** — ``candidate_factory`` may be called at
      most once per point per process, from whichever process evaluates
      that point.  Engines that cross process boundaries ship the
      factory itself (it must pickle), never the candidates it returns.
    * **Error transparency** — exceptions raised by the factory or the
      evaluation propagate to the caller; an engine must not swallow a
      failed point and return a partial result.
    """

    name: str

    def run_sweep(
        self,
        points: Sequence[DesignPoint],
        candidate_factory: CandidateFactory,
        reference: int,
        weights: FomWeights,
        cache: EvaluationCache,
    ) -> list[SweepCell]:
        """Evaluate all grid points and return their cells in order."""
        ...


class SerialExecutor:
    """The reference engine: in-process, in-order, one shared cache."""

    name = "serial"

    def run_sweep(
        self,
        points: Sequence[DesignPoint],
        candidate_factory: CandidateFactory,
        reference: int,
        weights: FomWeights,
        cache: EvaluationCache,
    ) -> list[SweepCell]:
        return evaluate_cells(
            points, candidate_factory, reference, weights, cache
        )


def _split_runs(points: Sequence[DesignPoint], parts: int) -> list[list]:
    """Split points into at most ``parts`` contiguous, near-even runs.

    ``parts`` is clamped down to ``len(points)`` (no empty runs are
    produced), but a non-positive request is a caller bug — silently
    clamping it up would hide a broken worker-count calculation — so it
    raises :class:`ValueError`.

    Raises
    ------
    ValueError
        If ``parts`` is not a positive integer.
    """
    if parts <= 0:
        raise ValueError(
            f"cannot split {len(points)} points into {parts} runs; "
            "parts must be a positive integer"
        )
    parts = max(1, min(parts, len(points)))
    base, extra = divmod(len(points), parts)
    runs = []
    start = 0
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        runs.append(list(points[start:stop]))
        start = stop
    return runs


def _process_worker(payload):
    """Evaluate one run of grid points in a worker process.

    Returns the cells plus the worker-local cache so the parent can
    merge hit/miss stats and reuse the computed sub-results.
    """
    points, candidate_factory, reference, weights = payload
    cache = EvaluationCache()
    cells = evaluate_cells(
        points, candidate_factory, reference, weights, cache
    )
    return cells, cache


class MultiprocessExecutor:
    """Shard contiguous runs of grid points across worker processes.

    Each worker evaluates its run with a fresh cache (memoisation still
    applies *within* a run); the parent merges every worker cache into
    the sweep's cache, so the final stats are the whole-sweep tally.
    The candidate factory must be picklable; results (cells and cached
    sub-results) are plain dataclasses and always are.
    """

    name = "process"

    def __init__(self, jobs: Optional[int] = None) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise SpecificationError(
                f"process engine needs at least 1 worker, got {jobs}"
            )
        self.jobs = jobs

    def run_sweep(
        self,
        points: Sequence[DesignPoint],
        candidate_factory: CandidateFactory,
        reference: int,
        weights: FomWeights,
        cache: EvaluationCache,
    ) -> list[SweepCell]:
        runs = _split_runs(points, self.jobs)
        payloads = [
            (run, candidate_factory, reference, weights) for run in runs
        ]
        with ProcessPoolExecutor(max_workers=len(runs)) as pool:
            outcomes = list(pool.map(_process_worker, payloads))
        cells: list[SweepCell] = []
        for run_cells, worker_cache in outcomes:
            cells.extend(run_cells)
            cache.merge(worker_cache)
        return cells


class ChunkedStackedExecutor:
    """Batch same-topology grid cells into circuit-stacked MNA solves.

    The MNA-heavy step of a sweep is the filter-chain assessment, and a
    grid produces many chains that share filter specifications (hence
    circuit topology) while differing only in element values.  This
    engine collects every *distinct, uncached* chain across the whole
    grid up front, assesses them in chunks through
    :func:`~repro.circuits.performance.assess_chain_many` — one stacked
    ``(B, F, n, n)`` solve per spec per chunk — seeds the cache, and
    then runs the ordinary per-point evaluation, which now hits the
    cache for every chain.
    """

    name = "stacked"

    def __init__(self, chunk_size: int = 32) -> None:
        if chunk_size < 1:
            raise SpecificationError(
                f"stacked engine needs a positive chunk size, got "
                f"{chunk_size}"
            )
        self.chunk_size = chunk_size

    def run_sweep(
        self,
        points: Sequence[DesignPoint],
        candidate_factory: CandidateFactory,
        reference: int,
        weights: FomWeights,
        cache: EvaluationCache,
    ) -> list[SweepCell]:
        per_point = [list(candidate_factory(point)) for point in points]

        pending: dict[str, list] = {}
        for candidates in per_point:
            for candidate in candidates:
                if (
                    candidate.fixed_performance is not None
                    or not candidate.filter_assignments
                ):
                    continue
                key = EvaluationCache.performance_key(
                    candidate.filter_assignments
                )
                if cache.has_performance(key) or key in pending:
                    continue
                pending[key] = candidate.filter_assignments

        keys = list(pending)
        for start in range(0, len(keys), self.chunk_size):
            chunk = keys[start : start + self.chunk_size]
            chains = assess_chain_many([pending[key] for key in chunk])
            for key, chain in zip(chunk, chains):
                cache.seed_performance(key, chain)

        return [
            evaluate_cell(point, candidates, reference, weights, cache)
            for point, candidates in zip(points, per_point)
        ]


def make_executor(
    name: str, jobs: Optional[int] = None
) -> Executor:
    """Build an engine by name (``serial`` / ``process`` / ``stacked``).

    ``jobs`` only applies to the process engine (worker count; defaults
    to the CPU count).
    """
    normalized = (name or "serial").strip().lower()
    if normalized == "serial":
        return SerialExecutor()
    if normalized == "process":
        return MultiprocessExecutor(jobs)
    if normalized == "stacked":
        return ChunkedStackedExecutor()
    raise SpecificationError(
        f"unknown sweep engine {name!r} "
        f"(choose from {', '.join(ENGINE_NAMES)})"
    )


def resolve_executor(
    engine: Optional[str] = None, jobs: Optional[int] = None
) -> Executor:
    """Merge explicit engine/jobs choices with the environment defaults.

    Each argument independently falls back to its environment variable
    when not given (``REPRO_SWEEP_ENGINE`` / ``REPRO_SWEEP_JOBS``), so
    ``--jobs 4`` under an exported ``REPRO_SWEEP_ENGINE=process`` runs
    four process workers, and ``--engine process`` alone picks up the
    environment's worker count.
    """
    if engine is None:
        engine = os.environ.get(ENGINE_ENV, "serial")
    if jobs is None:
        jobs_raw = os.environ.get(JOBS_ENV, "").strip()
        if jobs_raw:
            try:
                jobs = int(jobs_raw)
            except ValueError:
                raise SpecificationError(
                    f"{JOBS_ENV} must be an integer, got {jobs_raw!r}"
                ) from None
    return make_executor(engine, jobs)


def default_executor() -> Executor:
    """The engine named by the environment, serial when unset.

    ``REPRO_SWEEP_ENGINE`` selects the engine and ``REPRO_SWEEP_JOBS``
    the process-engine worker count — the hook that lets CI run the
    whole test suite under a non-default engine without touching call
    sites.
    """
    return resolve_executor()
