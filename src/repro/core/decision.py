"""Decision reporting (methodology step 5).

Renders a :class:`~repro.core.methodology.StudyResult` as the tables the
paper prints: the Fig. 3 area ranking, the Fig. 5 cost ranking and the
Fig. 6 figure-of-merit table, plus a one-paragraph recommendation.
"""

from __future__ import annotations

from ..reporting.tables import Table
from .methodology import StudyResult


def fig3_table(result: StudyResult) -> Table:
    """Fig. 3: area consumed by the different build-ups."""
    table = Table(
        title="Area consumed by the different build-ups (Fig. 3)",
        columns=("Build-up", "Final area [mm^2]", "Relative [%]"),
    )
    for row in result.rows:
        table.add_row(
            row.assessment.name,
            f"{row.assessment.final_area_mm2:.0f}",
            f"{row.area_percent:.0f}%",
        )
    return table


def fig5_table(result: StudyResult) -> Table:
    """Fig. 5: final cost split into direct / chip / yield loss."""
    base = result.row(result.reference_name).assessment.final_cost
    table = Table(
        title="Cost analysis results (Fig. 5, % of reference)",
        columns=(
            "Build-up",
            "Final cost",
            "Direct cost",
            "thereof: chip",
            "Yield loss",
        ),
    )
    for row in result.rows:
        cost = row.assessment.cost
        table.add_row(
            row.assessment.name,
            f"{100 * cost.final_cost_per_shipped / base:.1f}%",
            f"{100 * cost.direct_cost_per_unit / base:.1f}%",
            f"{100 * cost.chip_cost_per_unit / base:.1f}%",
            f"{100 * cost.yield_loss_per_shipped / base:.1f}%",
        )
    return table


def fig6_table(result: StudyResult) -> Table:
    """Fig. 6: performance, reciprocal size/cost and the FoM product."""
    table = Table(
        title="Deriving the figure of merit (Fig. 6)",
        columns=("Build-up", "Perf.", "1/Size", "1/Cost", "Product"),
    )
    for row in result.rows:
        fom = row.fom
        table.add_row(
            row.assessment.name,
            f"{fom.performance:.2f}",
            f"1/{fom.size_ratio:.2f}",
            f"1/{fom.cost_ratio:.2f}",
            f"{fom.figure_of_merit:.2f}",
        )
    return table


def recommendation(result: StudyResult) -> str:
    """One-paragraph decision, in the spirit of the paper's §4.4."""
    winner = result.winner
    ranked = result.ranked()
    runner_up = ranked[1] if len(ranked) > 1 else None
    lines = [
        f"Recommended build-up: {winner.assessment.name} "
        f"(figure of merit {winner.fom.figure_of_merit:.2f}).",
        f"It reduces the form factor to {winner.area_percent:.0f}% of the "
        f"{result.reference_name} reference at a cost of "
        f"{winner.cost_percent:.1f}% and a performance score of "
        f"{winner.fom.performance:.2f}.",
    ]
    if runner_up is not None:
        lines.append(
            f"Runner-up: {runner_up.assessment.name} with a figure of "
            f"merit of {runner_up.fom.figure_of_merit:.2f}."
        )
    return " ".join(lines)


def full_report(result: StudyResult) -> str:
    """All three tables plus the recommendation, ready to print."""
    parts = [
        fig3_table(result).render(),
        "",
        fig5_table(result).render(),
        "",
        fig6_table(result).render(),
        "",
        recommendation(result),
    ]
    return "\n".join(parts)
