"""Cross-host sharding of design-space sweeps.

The process engine (:mod:`repro.core.executors`) scales a sweep across
the cores of *one* machine.  This module scales it across *hosts*: a
grid is partitioned into content-addressed shards, each shard is
executed anywhere — any machine, any inner
:class:`~repro.core.executors.Executor` — and serialised to a portable
JSON artifact, and the artifacts are deterministically merged back into
the canonical row order, wherever they were produced:

* :func:`grid_fingerprint` — a stable content hash of the resolved
  grid.  It is computed over the *sorted* point representations, so
  the same set of design points yields the same fingerprint no matter
  how the grid's axes were ordered when it was built; every shard
  artifact carries it, and merge refuses to combine artifacts from
  different grids.  Because shard *indices* are order-dependent,
  artifacts also carry an order-sensitive :func:`grid_order_digest`:
  shards of the same grid enumerated in different axis orders are
  rejected with a clear error instead of being mis-paired;
* :func:`shard_indices` / :func:`run_shard` — partition the canonical
  point order into ``shards`` contiguous, near-even runs and evaluate
  one of them through any existing executor, returning a
  :class:`ShardArtifact`;
* :func:`write_shard_artifact` / :func:`read_shard_artifact` — the
  JSON serialisation.  Artifacts carry the shard's results as the
  *columnar* payload of a :class:`~repro.core.resultframe.ResultFrame`
  (one list per typed column, not one object per row); Python's JSON
  round-trips floats exactly (``repr``-based), so frames reassembled
  from artifacts are *byte-identical* to what the serial engine would
  have produced in-process.  Writes are **atomic**: the payload is
  written to a ``.tmp`` sibling (the :data:`~ArtifactState.PENDING`
  state), fsynced, and renamed into place with :func:`os.replace`, so
  a concurrent reader — the incremental gather service polls shard
  directories — can never observe a half-written artifact, and a host
  killed mid-write leaves at most a stale temp file, never a torn
  destination;
* :func:`merge_shard_artifacts` — reassemble any combination of
  artifacts into one :class:`~repro.core.sweep.SweepReport` with a
  single vectorised frame concatenation + stable sort into canonical
  point order, with duplicate- and gap-detection (a missing or doubled
  shard is a loud :class:`ShardMergeError`, never a silently wrong
  report) and additive cache statistics that count a sub-result
  computed by two cold shard caches only once in the merged
  ``entries`` tally;
* :class:`ShardedExecutor` — the same partitioning as an in-process
  :class:`~repro.core.executors.Executor`: shards run sequentially
  through an inner engine against the caller's shared cache, so the
  engine is byte-identical to serial with near-zero overhead
  (``benchmarks/test_sharded_speed.py`` gates it at ≤ 10 %).

The CLI surface is ``repro-gps sweep --shards K --shard-index I
--shard-dir DIR`` (run one shard, write the artifact; add ``--resume``
to skip the run when a valid artifact for the same grid and shard is
already there) and ``repro-gps sweep --merge DIR`` (combine
artifacts); see ``docs/sweep-guide.md`` for the shard → scp → merge
walkthrough.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from ..errors import SpecificationError
from .executors import CandidateFactory, Executor, SerialExecutor
from .figure_of_merit import FomWeights
from .resultframe import ResultFrame
from .sweep import (
    CACHE_TABLES,
    DesignPoint,
    EvaluationCache,
    SweepCell,
    SweepGrid,
    SweepReport,
    frame_for_cells,
    ratio_columns_for_cells,
)

#: Artifact format identifier; bumped on incompatible payload changes.
#: Version 2 replaced the per-row ``cells`` objects with the columnar
#: :class:`~repro.core.resultframe.ResultFrame` payload.
SHARD_FORMAT = "repro-sweep-shard/2"


class ShardMergeError(SpecificationError):
    """A shard artifact set cannot be (safely) merged."""


def _point_reprs(points: Sequence[DesignPoint]) -> list[str]:
    return [repr(point) for point in points]


def grid_fingerprint(points: Sequence[DesignPoint]) -> str:
    """Stable content hash of a resolved grid.

    Hashes the *sorted* ``repr`` of every design point (the same
    content key discipline :class:`~repro.core.sweep.EvaluationCache`
    relies on), so the fingerprint identifies the grid's content
    independently of axis ordering: a host that builds the same set of
    points with its volume axis reversed still addresses the same
    shard family.  Shard *indices* do depend on the order, which is
    why artifacts additionally carry :func:`grid_order_digest` — merge
    uses the fingerprint to recognise the grid and the order digest to
    refuse index spaces that do not line up.
    """
    digest = hashlib.sha256()
    for text in sorted(_point_reprs(points)):
        digest.update(text.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def grid_order_digest(points: Sequence[DesignPoint]) -> str:
    """Hash of the grid's *canonical order* (order-sensitive).

    Two hosts that build the same point set with axes in different
    orders share a :func:`grid_fingerprint` but disagree on which
    canonical index names which point — merging their shards
    index-wise would assemble a silently wrong report.  The order
    digest catches exactly that: merge demands it match across
    artifacts, so an axis-order mismatch is a loud error naming the
    cause instead of a duplicated/missing design point.
    """
    digest = hashlib.sha256()
    for text in _point_reprs(points):
        digest.update(text.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def shard_indices(total: int, shards: int, shard_index: int) -> range:
    """Canonical point indices of one shard.

    The canonical order is split into ``shards`` contiguous, near-even
    runs (the same front-loaded split the process engine uses, so
    neighbouring points — which share memoised sub-results — stay
    together).  Shards beyond the point count are legitimately empty:
    four shards of a three-point grid produce one empty artifact that
    merges cleanly.
    """
    if shards < 1:
        raise SpecificationError(
            f"shard count must be a positive integer, got {shards}"
        )
    if not (0 <= shard_index < shards):
        raise SpecificationError(
            f"shard index {shard_index} out of range for {shards} shards"
        )
    base, extra = divmod(total, shards)
    start = shard_index * base + min(shard_index, extra)
    stop = start + base + (1 if shard_index < extra else 0)
    return range(start, stop)


@dataclass(frozen=True)
class ShardArtifact:
    """One shard's results, ready to travel between hosts.

    Carries everything a merge needs and nothing it does not: the grid
    fingerprint (content addressing), the shard geometry, the shard's
    results as one columnar
    :class:`~repro.core.resultframe.ResultFrame` (``frame``, with
    ``row_counts[k]`` rows belonging to canonical point
    ``indices[k]``, in order), and the worker cache's
    :meth:`~repro.core.sweep.EvaluationCache.portable_state` (hit/miss
    counters plus entry-key digests — never cached values).
    """

    fingerprint: str
    order_digest: str
    shards: int
    shard_index: int
    total_points: int
    indices: tuple[int, ...]
    row_counts: tuple[int, ...]
    frame: ResultFrame
    cache_state: dict
    #: Optional per-row FoM input ratios (``size_ratio`` /
    #: ``cost_ratio`` → one float tuple each, aligned with the frame).
    #: Written by every current :func:`run_shard`; ``None`` on
    #: artifacts produced before the warehouse tier existed — merge
    #: does not need them, the warehouse appender does.
    ratios: Optional[dict] = None

    def __post_init__(self) -> None:
        for label, value, minimum in (
            ("shards", self.shards, 1),
            ("shard_index", self.shard_index, 0),
            ("total_points", self.total_points, 0),
        ):
            # Exact ints only: a string would crash the merge's index
            # comparisons with a raw numpy error, a float pass silently.
            if (
                not isinstance(value, int)
                or isinstance(value, bool)
                or value < minimum
            ):
                raise SpecificationError(
                    f"shard artifact {label} must be an integer "
                    f">= {minimum}, got {value!r}"
                )
        if len(self.indices) != len(self.row_counts):
            raise SpecificationError(
                f"shard artifact carries {len(self.indices)} indices "
                f"but {len(self.row_counts)} row counts"
            )
        for label, values in (
            ("index", self.indices),
            ("row count", self.row_counts),
        ):
            for value in values:
                # Exact non-negative ints only: a float would silently
                # truncate (and a negative count crash) in the int64
                # cast :meth:`point_of_row` feeds to ``np.repeat``.
                if (
                    not isinstance(value, int)
                    or isinstance(value, bool)
                    or value < 0
                ):
                    raise SpecificationError(
                        f"shard artifact {label}s must be non-negative "
                        f"integers, got {value!r}"
                    )
        if sum(self.row_counts) != len(self.frame):
            raise SpecificationError(
                f"shard artifact row counts sum to "
                f"{sum(self.row_counts)} but the frame carries "
                f"{len(self.frame)} rows"
            )
        if self.ratios is not None:
            if not isinstance(self.ratios, dict) or set(self.ratios) != {
                "size_ratio",
                "cost_ratio",
            }:
                raise SpecificationError(
                    "shard artifact ratios must map exactly "
                    "size_ratio and cost_ratio to value lists, got "
                    f"{self.ratios!r:.120}"
                )
            for name, values in self.ratios.items():
                if len(values) != len(self.frame):
                    raise SpecificationError(
                        f"shard artifact {name} carries {len(values)} "
                        f"values but the frame carries "
                        f"{len(self.frame)} rows"
                    )
                for value in values:
                    # Exact floats only: the warehouse re-rank kernel
                    # divides by these, so a string or bool must fail
                    # here, not as a numpy cast surprise later.
                    if isinstance(value, bool) or not isinstance(
                        value, (int, float)
                    ):
                        raise SpecificationError(
                            f"shard artifact {name} values must be "
                            f"numbers, got {value!r}"
                        )

    def point_of_row(self) -> np.ndarray:
        """Canonical point index of every frame row (vectorised)."""
        return np.repeat(
            np.asarray(self.indices, dtype=np.int64),
            np.asarray(self.row_counts, dtype=np.int64),
        )


def run_shard(
    grid: Union[SweepGrid, Iterable[DesignPoint]],
    candidate_factory: CandidateFactory,
    shards: int,
    shard_index: int,
    reference: int = 0,
    weights: Optional[FomWeights] = None,
    cache: Optional[EvaluationCache] = None,
    executor: Optional[Executor] = None,
) -> ShardArtifact:
    """Evaluate one shard of a grid and package it for merging.

    The full grid is resolved locally (cheap — points are tiny frozen
    dataclasses) so the shard knows its canonical indices and the
    grid fingerprint; only the shard's own points are evaluated,
    through ``executor`` (serial by default — any engine works, the
    rows are identical either way).
    """
    points = grid.points() if isinstance(grid, SweepGrid) else list(grid)
    if not points:
        raise SpecificationError("design sweep needs at least one point")
    if weights is None:
        weights = FomWeights()
    if cache is None:
        cache = EvaluationCache()
    if executor is None:
        executor = SerialExecutor()
    indices = shard_indices(len(points), shards, shard_index)
    shard_points = [points[i] for i in indices]
    cells: list[SweepCell] = []
    if shard_points:
        cells = executor.run_sweep(
            shard_points, candidate_factory, reference, weights, cache
        )
    return ShardArtifact(
        fingerprint=grid_fingerprint(points),
        order_digest=grid_order_digest(points),
        shards=shards,
        shard_index=shard_index,
        total_points=len(points),
        indices=tuple(indices),
        row_counts=tuple(len(cell.result.rows) for cell in cells),
        frame=frame_for_cells(cells),
        cache_state=cache.portable_state(),
        ratios=ratio_columns_for_cells(cells),
    )


def artifact_to_payload(artifact: ShardArtifact) -> dict:
    """The artifact as a JSON-ready dict (see :data:`SHARD_FORMAT`).

    The shard's results travel as the frame's columnar payload —
    ``columns`` maps each :class:`~repro.core.resultframe.SweepRow`
    field to one flat value list — plus ``indices``/``row_counts``
    assigning runs of rows to canonical grid points.  Floats are
    emitted with ``repr`` by the JSON encoder, so the round-trip is
    exact.
    """
    payload = {
        "format": SHARD_FORMAT,
        "fingerprint": artifact.fingerprint,
        "order_digest": artifact.order_digest,
        "shards": artifact.shards,
        "shard_index": artifact.shard_index,
        "total_points": artifact.total_points,
        "indices": list(artifact.indices),
        "row_counts": list(artifact.row_counts),
        "columns": artifact.frame.to_json_columns(),
        "cache": artifact.cache_state,
    }
    if artifact.ratios is not None:
        # Additive, still format 2: readers without warehouse support
        # ignore the key, old artifacts without it stay loadable.
        payload["ratios"] = {
            name: list(values) for name, values in artifact.ratios.items()
        }
    return payload


def payload_to_artifact(payload: dict, source: str = "<payload>") -> ShardArtifact:
    """Rebuild a :class:`ShardArtifact` from its JSON payload.

    ``source`` names the artifact in error messages (the file path
    when loaded from disk).
    """
    if not isinstance(payload, dict):
        raise ShardMergeError(f"{source}: shard artifact is not an object")
    declared = payload.get("format")
    if declared != SHARD_FORMAT:
        raise ShardMergeError(
            f"{source}: unsupported shard format {declared!r} "
            f"(expected {SHARD_FORMAT!r})"
        )
    try:
        raw_ratios = payload.get("ratios")
        ratios = None
        if raw_ratios is not None:
            if not isinstance(raw_ratios, dict):
                raise TypeError("ratios must be an object")
            ratios = {
                str(name): tuple(values)
                for name, values in raw_ratios.items()
            }
        return ShardArtifact(
            fingerprint=payload["fingerprint"],
            order_digest=payload["order_digest"],
            shards=payload["shards"],
            shard_index=payload["shard_index"],
            total_points=payload["total_points"],
            indices=tuple(payload["indices"]),
            row_counts=tuple(payload["row_counts"]),
            frame=ResultFrame.from_json_columns(payload["columns"]),
            cache_state=payload.get("cache", {}),
            ratios=ratios,
        )
    except (KeyError, TypeError, ValueError, SpecificationError) as exc:
        # ValueError covers wrong-typed column values (numpy's cast
        # failures); everything malformed surfaces as ShardMergeError.
        raise ShardMergeError(
            f"{source}: malformed shard artifact ({exc})"
        ) from None


def shard_filename(shards: int, shard_index: int) -> str:
    """Canonical artifact filename: ``shard-0001-of-0004.json``."""
    return f"shard-{shard_index:04d}-of-{shards:04d}.json"


class ArtifactState(enum.Enum):
    """Durability state of one shard artifact path.

    The write protocol gives every artifact exactly three observable
    states, which is what lets watchers poll a shard directory safely:

    * ``ABSENT`` — neither the artifact nor its temp sibling exists;
      the shard has not been attempted (or its temp file was cleaned);
    * ``PENDING`` — only the ``.tmp`` sibling exists: a writer is
      mid-serialisation, or died there.  Never read it; a retry will
      atomically replace it;
    * ``COMPLETE`` — the destination path exists.  Because the only
      way it comes into existence is :func:`os.replace` of a fully
      written, fsynced temp file, existence *is* completeness: a
      reader that can open it sees every byte.
    """

    ABSENT = "absent"
    PENDING = "pending"
    COMPLETE = "complete"


def pending_path(path: Union[str, Path]) -> Path:
    """The temp sibling an in-flight artifact write uses.

    Named ``<artifact>.tmp`` so it never matches the ``shard-*.json``
    glob :func:`find_shard_artifacts` (and hence merge/gather) scan.
    """
    path = Path(path)
    return path.with_name(path.name + ".tmp")


def artifact_state(path: Union[str, Path]) -> ArtifactState:
    """Classify an artifact path (see :class:`ArtifactState`)."""
    path = Path(path)
    if path.exists():
        return ArtifactState.COMPLETE
    if pending_path(path).exists():
        return ArtifactState.PENDING
    return ArtifactState.ABSENT


def write_shard_artifact(
    path: Union[str, Path], artifact: ShardArtifact
) -> Path:
    """Serialise a shard artifact to ``path`` (JSON, exact floats).

    The write is atomic with respect to concurrent readers: the
    payload goes to the :func:`pending_path` temp sibling first, is
    flushed and fsynced there, and only then renamed over ``path``
    with :func:`os.replace`.  A reader polling the directory therefore
    sees either no artifact or a complete one — never a prefix — and a
    writer killed at any instant leaves the destination untouched
    (including a previous valid artifact it was about to replace).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = pending_path(path)
    try:
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(artifact_to_payload(artifact), handle)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        # Best-effort cleanup: a failed write must not leave a stale
        # PENDING file claiming a writer is still at work.
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    return path


def read_shard_artifact(path: Union[str, Path]) -> ShardArtifact:
    """Load one shard artifact, with path context on every failure."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ShardMergeError(
            f"cannot read shard artifact {path}: {exc}"
        ) from None
    except json.JSONDecodeError as exc:
        raise ShardMergeError(
            f"shard artifact {path} is not valid JSON: {exc}"
        ) from None
    except UnicodeDecodeError as exc:
        # A write torn mid multi-byte character (pre-atomic writers,
        # foreign tools) must surface as a merge error, not a
        # UnicodeDecodeError traceback.
        raise ShardMergeError(
            f"shard artifact {path} is not valid UTF-8 "
            f"(truncated write?): {exc}"
        ) from None
    return payload_to_artifact(payload, source=str(path))


def artifact_matches(
    artifact: ShardArtifact,
    *,
    fingerprint: str,
    order_digest: str,
    shards: int,
    shard_index: int,
    total_points: int,
) -> bool:
    """Does an artifact cover exactly this shard of this grid?

    The single validity predicate behind ``--resume``'s skip-if-valid,
    the work queue's "already done" check and the gather service's
    artifact validation: the artifact must fingerprint the same grid in
    the same canonical order and describe exactly the requested shard
    of the requested partition.
    """
    return (
        artifact.fingerprint == fingerprint
        and artifact.order_digest == order_digest
        and artifact.shards == shards
        and artifact.shard_index == shard_index
        and artifact.total_points == total_points
    )


def find_pending_artifacts(directory: Union[str, Path]) -> list[Path]:
    """All in-flight (``PENDING``) artifact temp files in a directory.

    Watchers use this for progress display only — a pending file means
    a writer is (or was) mid-serialisation; its content is unreadable
    by contract.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ShardMergeError(
            f"shard directory {directory} does not exist"
        )
    return sorted(directory.glob("shard-*.json.tmp"))


def find_shard_artifacts(directory: Union[str, Path]) -> list[Path]:
    """All ``shard-*.json`` artifacts in a directory, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        raise ShardMergeError(
            f"shard directory {directory} does not exist"
        )
    return sorted(directory.glob("shard-*.json"))


def merge_cache_states(states: Iterable[dict]) -> dict:
    """Fold shard cache states into one whole-sweep stats report.

    Hit/miss counters are additive across shards (each lookup happened
    exactly once, on some host); distinct entries are the *union* of
    the per-shard entry-key digests, so a sub-result that two cold
    shard caches both computed — the same content key, memoised
    independently — counts once, exactly as it would have under one
    shared in-process cache.  The result has the
    :meth:`~repro.core.sweep.EvaluationCache.stats` shape.
    """
    hits = {name: 0 for name in CACHE_TABLES}
    misses = {name: 0 for name in CACHE_TABLES}
    keys: dict[str, set] = {name: set() for name in CACHE_TABLES}
    for state in states:
        tables = state.get("tables", {})
        for name in CACHE_TABLES:
            table = tables.get(name, {})
            hits[name] += int(table.get("hits", 0))
            misses[name] += int(table.get("misses", 0))
            keys[name].update(table.get("keys", ()))
    return {
        "hits": sum(hits.values()),
        "misses": sum(misses.values()),
        "tables": {
            name: {
                "hits": hits[name],
                "misses": misses[name],
                "entries": len(keys[name]),
            }
            for name in CACHE_TABLES
        },
    }


def _summarise_indices(indices: Sequence[int], limit: int = 20) -> str:
    """Comma-list of point indices, capped so error messages stay
    readable on huge grids."""
    listed = ", ".join(str(i) for i in indices[:limit])
    if len(indices) > limit:
        listed += f", … and {len(indices) - limit} more"
    return listed


ArtifactLike = Union[ShardArtifact, str, Path]


def _load(artifact: ArtifactLike) -> ShardArtifact:
    if isinstance(artifact, ShardArtifact):
        return artifact
    return read_shard_artifact(artifact)


def merge_shard_artifacts(
    artifacts: Iterable[ArtifactLike],
) -> SweepReport:
    """Reassemble shard artifacts into one canonical sweep report.

    Accepts in-memory artifacts, file paths, or a mix, in *any* order
    — produced by one host or many.  The merge is deterministic: rows
    come back in the canonical grid order whatever order the shards
    ran or arrived in, byte-identical to a serial in-process sweep of
    the same grid.  Reassembly is columnar: one vectorised
    :meth:`~repro.core.resultframe.ResultFrame.concat` over the shard
    frames followed by a stable sort on the canonical point index —
    no per-row object is ever materialised, so merging hundreds of
    10k-row artifacts costs numpy passes, not Python loops.

    Raises
    ------
    ShardMergeError
        If no artifacts are given, the artifacts fingerprint different
        grids, disagree on the grid size, cover a canonical index
        twice (duplicated shard), or leave indices uncovered (missing
        shard).  The message names the offending indices so the
        operator knows which shard to re-run or drop.
    """
    loaded = [_load(artifact) for artifact in artifacts]
    if not loaded:
        raise ShardMergeError("no shard artifacts to merge")

    reference = loaded[0]
    for artifact in loaded[1:]:
        if artifact.fingerprint != reference.fingerprint:
            raise ShardMergeError(
                f"shard artifacts fingerprint different grids: "
                f"{reference.fingerprint} (shard "
                f"{reference.shard_index}/{reference.shards}) vs "
                f"{artifact.fingerprint} (shard "
                f"{artifact.shard_index}/{artifact.shards})"
            )
        if artifact.order_digest != reference.order_digest:
            # Same point set, different canonical order: index-wise
            # merging would pair rows with the wrong points.
            raise ShardMergeError(
                f"shard artifacts enumerate the same grid in a "
                f"different point order (order digest "
                f"{reference.order_digest} vs {artifact.order_digest}): "
                f"re-run the shards with identically-ordered axes"
            )
        if artifact.total_points != reference.total_points:
            raise ShardMergeError(
                f"shard artifacts disagree on the grid size: "
                f"{reference.total_points} vs {artifact.total_points} "
                f"points"
            )

    total = reference.total_points
    for artifact in loaded:
        indices = np.asarray(artifact.indices, dtype=np.int64)
        if indices.size and (
            indices.min() < 0 or indices.max() >= total
        ):
            outside = int(
                indices[(indices < 0) | (indices >= total)][0]
            )
            raise ShardMergeError(
                f"shard {artifact.shard_index}/{artifact.shards} "
                f"carries point index {outside}, outside the "
                f"{total}-point grid"
            )

    all_indices = np.concatenate(
        [np.asarray(a.indices, dtype=np.int64) for a in loaded]
    )
    covered, counts = np.unique(all_indices, return_counts=True)
    duplicates = covered[counts > 1]
    if duplicates.size:
        raise ShardMergeError(
            f"duplicated point indices across shard artifacts: "
            f"{_summarise_indices(duplicates.tolist())} "
            f"(the same shard was merged twice?)"
        )
    if covered.size != total:
        coverage = np.zeros(total, dtype=bool)
        coverage[covered] = True
        missing = np.flatnonzero(~coverage).tolist()
        raise ShardMergeError(
            f"missing point indices {_summarise_indices(missing)} of "
            f"{total}: a shard artifact was not merged"
        )

    # Vectorised reassembly: concatenate the shard frames (whatever
    # order they arrived in), then stable-sort rows by their canonical
    # point index.  Each point lives in exactly one artifact and its
    # rows are contiguous there, so the stable sort reproduces the
    # serial row order exactly.
    merged = ResultFrame.concat([a.frame for a in loaded])
    point_of_row = np.concatenate([a.point_of_row() for a in loaded])
    merged = merged.take(np.argsort(point_of_row, kind="stable"))
    return SweepReport(
        cells=(),
        frame=merged,
        cache_stats=merge_cache_states(
            artifact.cache_state for artifact in loaded
        ),
    )


class ShardedExecutor:
    """The shard partitioning as an in-process execution engine.

    Partitions the grid with :func:`shard_indices` — exactly the runs
    the cross-host flow would distribute — and evaluates each shard
    sequentially through an inner engine against the caller's shared
    cache.  Because the cache is shared, memoisation still spans
    shard boundaries and the engine is byte-identical to serial with
    only partition bookkeeping as overhead; the cold-cache cross-host
    behaviour is exercised by :func:`run_shard` /
    :func:`merge_shard_artifacts` instead.
    """

    name = "sharded"

    def __init__(
        self,
        shards: Optional[int] = None,
        inner: Optional[Executor] = None,
    ) -> None:
        if shards is None:
            shards = os.cpu_count() or 1
        if shards < 1:
            raise SpecificationError(
                f"sharded engine needs at least 1 shard, got {shards}"
            )
        self.shards = shards
        self.inner = inner if inner is not None else SerialExecutor()

    def run_sweep(
        self,
        points: Sequence[DesignPoint],
        candidate_factory: CandidateFactory,
        reference: int,
        weights: FomWeights,
        cache: EvaluationCache,
    ) -> list[SweepCell]:
        cells: list[Optional[SweepCell]] = [None] * len(points)
        for shard_index in range(self.shards):
            indices = shard_indices(len(points), self.shards, shard_index)
            shard_points = [points[i] for i in indices]
            if not shard_points:
                continue
            shard_cells = self.inner.run_sweep(
                shard_points, candidate_factory, reference, weights, cache
            )
            for index, cell in zip(indices, shard_cells):
                cells[index] = cell
        return cells
