"""Cross-host sharding of design-space sweeps.

The process engine (:mod:`repro.core.executors`) scales a sweep across
the cores of *one* machine.  This module scales it across *hosts*: a
grid is partitioned into content-addressed shards, each shard is
executed anywhere — any machine, any inner
:class:`~repro.core.executors.Executor` — and serialised to a portable
JSON artifact, and the artifacts are deterministically merged back into
the canonical row order, wherever they were produced:

* :func:`grid_fingerprint` — a stable content hash of the resolved
  grid.  It is computed over the *sorted* point representations, so
  the same set of design points yields the same fingerprint no matter
  how the grid's axes were ordered when it was built; every shard
  artifact carries it, and merge refuses to combine artifacts from
  different grids.  Because shard *indices* are order-dependent,
  artifacts also carry an order-sensitive :func:`grid_order_digest`:
  shards of the same grid enumerated in different axis orders are
  rejected with a clear error instead of being mis-paired;
* :func:`shard_indices` / :func:`run_shard` — partition the canonical
  point order into ``shards`` contiguous, near-even runs and evaluate
  one of them through any existing executor, returning a
  :class:`ShardArtifact`;
* :func:`write_shard_artifact` / :func:`read_shard_artifact` — the
  JSON serialisation.  Python's JSON round-trips floats exactly
  (``repr``-based), so rows reassembled from artifacts are
  *byte-identical* to the rows the serial engine would have produced
  in-process;
* :func:`merge_shard_artifacts` — reassemble any combination of
  artifacts into one :class:`~repro.core.sweep.SweepReport`, with
  duplicate- and gap-detection (a missing or doubled shard is a
  loud :class:`ShardMergeError`, never a silently wrong report) and
  additive cache statistics that count a sub-result computed by two
  cold shard caches only once in the merged ``entries`` tally;
* :class:`ShardedExecutor` — the same partitioning as an in-process
  :class:`~repro.core.executors.Executor`: shards run sequentially
  through an inner engine against the caller's shared cache, so the
  engine is byte-identical to serial with near-zero overhead
  (``benchmarks/test_sharded_speed.py`` gates it at ≤ 10 %).

The CLI surface is ``repro-gps sweep --shards K --shard-index I
--shard-dir DIR`` (run one shard, write the artifact) and
``repro-gps sweep --merge DIR`` (combine artifacts); see
``docs/sweep-guide.md`` for the shard → scp → merge walkthrough.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from ..errors import SpecificationError
from .executors import CandidateFactory, Executor, SerialExecutor
from .figure_of_merit import FomWeights
from .sweep import (
    CACHE_TABLES,
    DesignPoint,
    EvaluationCache,
    SweepCell,
    SweepGrid,
    SweepReport,
    SweepRow,
    rows_for_cell,
)

#: Artifact format identifier; bumped on incompatible payload changes.
SHARD_FORMAT = "repro-sweep-shard/1"


class ShardMergeError(SpecificationError):
    """A shard artifact set cannot be (safely) merged."""


def _point_reprs(points: Sequence[DesignPoint]) -> list[str]:
    return [repr(point) for point in points]


def grid_fingerprint(points: Sequence[DesignPoint]) -> str:
    """Stable content hash of a resolved grid.

    Hashes the *sorted* ``repr`` of every design point (the same
    content key discipline :class:`~repro.core.sweep.EvaluationCache`
    relies on), so the fingerprint identifies the grid's content
    independently of axis ordering: a host that builds the same set of
    points with its volume axis reversed still addresses the same
    shard family.  Shard *indices* do depend on the order, which is
    why artifacts additionally carry :func:`grid_order_digest` — merge
    uses the fingerprint to recognise the grid and the order digest to
    refuse index spaces that do not line up.
    """
    digest = hashlib.sha256()
    for text in sorted(_point_reprs(points)):
        digest.update(text.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def grid_order_digest(points: Sequence[DesignPoint]) -> str:
    """Hash of the grid's *canonical order* (order-sensitive).

    Two hosts that build the same point set with axes in different
    orders share a :func:`grid_fingerprint` but disagree on which
    canonical index names which point — merging their shards
    index-wise would assemble a silently wrong report.  The order
    digest catches exactly that: merge demands it match across
    artifacts, so an axis-order mismatch is a loud error naming the
    cause instead of a duplicated/missing design point.
    """
    digest = hashlib.sha256()
    for text in _point_reprs(points):
        digest.update(text.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def shard_indices(total: int, shards: int, shard_index: int) -> range:
    """Canonical point indices of one shard.

    The canonical order is split into ``shards`` contiguous, near-even
    runs (the same front-loaded split the process engine uses, so
    neighbouring points — which share memoised sub-results — stay
    together).  Shards beyond the point count are legitimately empty:
    four shards of a three-point grid produce one empty artifact that
    merges cleanly.
    """
    if shards < 1:
        raise SpecificationError(
            f"shard count must be a positive integer, got {shards}"
        )
    if not (0 <= shard_index < shards):
        raise SpecificationError(
            f"shard index {shard_index} out of range for {shards} shards"
        )
    base, extra = divmod(total, shards)
    start = shard_index * base + min(shard_index, extra)
    stop = start + base + (1 if shard_index < extra else 0)
    return range(start, stop)


@dataclass(frozen=True)
class ShardArtifact:
    """One shard's results, ready to travel between hosts.

    Carries everything a merge needs and nothing it does not: the grid
    fingerprint (content addressing), the shard geometry, the rows of
    every evaluated point keyed by canonical index, and the worker
    cache's :meth:`~repro.core.sweep.EvaluationCache.portable_state`
    (hit/miss counters plus entry-key digests — never cached values).
    """

    fingerprint: str
    order_digest: str
    shards: int
    shard_index: int
    total_points: int
    indices: tuple[int, ...]
    rows_per_point: tuple[tuple[SweepRow, ...], ...]
    cache_state: dict

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.rows_per_point):
            raise SpecificationError(
                f"shard artifact carries {len(self.indices)} indices "
                f"but {len(self.rows_per_point)} row groups"
            )


def run_shard(
    grid: Union[SweepGrid, Iterable[DesignPoint]],
    candidate_factory: CandidateFactory,
    shards: int,
    shard_index: int,
    reference: int = 0,
    weights: Optional[FomWeights] = None,
    cache: Optional[EvaluationCache] = None,
    executor: Optional[Executor] = None,
) -> ShardArtifact:
    """Evaluate one shard of a grid and package it for merging.

    The full grid is resolved locally (cheap — points are tiny frozen
    dataclasses) so the shard knows its canonical indices and the
    grid fingerprint; only the shard's own points are evaluated,
    through ``executor`` (serial by default — any engine works, the
    rows are identical either way).
    """
    points = grid.points() if isinstance(grid, SweepGrid) else list(grid)
    if not points:
        raise SpecificationError("design sweep needs at least one point")
    if weights is None:
        weights = FomWeights()
    if cache is None:
        cache = EvaluationCache()
    if executor is None:
        executor = SerialExecutor()
    indices = shard_indices(len(points), shards, shard_index)
    shard_points = [points[i] for i in indices]
    cells: list[SweepCell] = []
    if shard_points:
        cells = executor.run_sweep(
            shard_points, candidate_factory, reference, weights, cache
        )
    return ShardArtifact(
        fingerprint=grid_fingerprint(points),
        order_digest=grid_order_digest(points),
        shards=shards,
        shard_index=shard_index,
        total_points=len(points),
        indices=tuple(indices),
        rows_per_point=tuple(
            tuple(rows_for_cell(cell)) for cell in cells
        ),
        cache_state=cache.portable_state(),
    )


_ROW_FIELDS = tuple(field.name for field in fields(SweepRow))


def artifact_to_payload(artifact: ShardArtifact) -> dict:
    """The artifact as a JSON-ready dict (see :data:`SHARD_FORMAT`)."""
    return {
        "format": SHARD_FORMAT,
        "fingerprint": artifact.fingerprint,
        "order_digest": artifact.order_digest,
        "shards": artifact.shards,
        "shard_index": artifact.shard_index,
        "total_points": artifact.total_points,
        "cells": [
            {
                "index": index,
                "rows": [row.as_dict() for row in rows],
            }
            for index, rows in zip(
                artifact.indices, artifact.rows_per_point
            )
        ],
        "cache": artifact.cache_state,
    }


def payload_to_artifact(payload: dict, source: str = "<payload>") -> ShardArtifact:
    """Rebuild a :class:`ShardArtifact` from its JSON payload.

    ``source`` names the artifact in error messages (the file path
    when loaded from disk).
    """
    if not isinstance(payload, dict):
        raise ShardMergeError(f"{source}: shard artifact is not an object")
    declared = payload.get("format")
    if declared != SHARD_FORMAT:
        raise ShardMergeError(
            f"{source}: unsupported shard format {declared!r} "
            f"(expected {SHARD_FORMAT!r})"
        )
    try:
        cells = payload["cells"]
        indices = tuple(cell["index"] for cell in cells)
        rows_per_point = tuple(
            tuple(
                SweepRow(**{name: record[name] for name in _ROW_FIELDS})
                for record in cell["rows"]
            )
            for cell in cells
        )
        return ShardArtifact(
            fingerprint=payload["fingerprint"],
            order_digest=payload["order_digest"],
            shards=payload["shards"],
            shard_index=payload["shard_index"],
            total_points=payload["total_points"],
            indices=indices,
            rows_per_point=rows_per_point,
            cache_state=payload.get("cache", {}),
        )
    except (KeyError, TypeError) as exc:
        raise ShardMergeError(
            f"{source}: malformed shard artifact ({exc})"
        ) from None


def shard_filename(shards: int, shard_index: int) -> str:
    """Canonical artifact filename: ``shard-0001-of-0004.json``."""
    return f"shard-{shard_index:04d}-of-{shards:04d}.json"


def write_shard_artifact(
    path: Union[str, Path], artifact: ShardArtifact
) -> Path:
    """Serialise a shard artifact to ``path`` (JSON, exact floats)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(artifact_to_payload(artifact), handle)
        handle.write("\n")
    return path


def read_shard_artifact(path: Union[str, Path]) -> ShardArtifact:
    """Load one shard artifact, with path context on every failure."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ShardMergeError(
            f"cannot read shard artifact {path}: {exc}"
        ) from None
    except json.JSONDecodeError as exc:
        raise ShardMergeError(
            f"shard artifact {path} is not valid JSON: {exc}"
        ) from None
    return payload_to_artifact(payload, source=str(path))


def find_shard_artifacts(directory: Union[str, Path]) -> list[Path]:
    """All ``shard-*.json`` artifacts in a directory, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        raise ShardMergeError(
            f"shard directory {directory} does not exist"
        )
    return sorted(directory.glob("shard-*.json"))


def merge_cache_states(states: Iterable[dict]) -> dict:
    """Fold shard cache states into one whole-sweep stats report.

    Hit/miss counters are additive across shards (each lookup happened
    exactly once, on some host); distinct entries are the *union* of
    the per-shard entry-key digests, so a sub-result that two cold
    shard caches both computed — the same content key, memoised
    independently — counts once, exactly as it would have under one
    shared in-process cache.  The result has the
    :meth:`~repro.core.sweep.EvaluationCache.stats` shape.
    """
    hits = {name: 0 for name in CACHE_TABLES}
    misses = {name: 0 for name in CACHE_TABLES}
    keys: dict[str, set] = {name: set() for name in CACHE_TABLES}
    for state in states:
        tables = state.get("tables", {})
        for name in CACHE_TABLES:
            table = tables.get(name, {})
            hits[name] += int(table.get("hits", 0))
            misses[name] += int(table.get("misses", 0))
            keys[name].update(table.get("keys", ()))
    return {
        "hits": sum(hits.values()),
        "misses": sum(misses.values()),
        "tables": {
            name: {
                "hits": hits[name],
                "misses": misses[name],
                "entries": len(keys[name]),
            }
            for name in CACHE_TABLES
        },
    }


def _summarise_indices(indices: Sequence[int], limit: int = 20) -> str:
    """Comma-list of point indices, capped so error messages stay
    readable on huge grids."""
    listed = ", ".join(str(i) for i in indices[:limit])
    if len(indices) > limit:
        listed += f", … and {len(indices) - limit} more"
    return listed


ArtifactLike = Union[ShardArtifact, str, Path]


def _load(artifact: ArtifactLike) -> ShardArtifact:
    if isinstance(artifact, ShardArtifact):
        return artifact
    return read_shard_artifact(artifact)


def merge_shard_artifacts(
    artifacts: Iterable[ArtifactLike],
) -> SweepReport:
    """Reassemble shard artifacts into one canonical sweep report.

    Accepts in-memory artifacts, file paths, or a mix, in *any* order
    — produced by one host or many.  The merge is deterministic: rows
    come back in the canonical grid order whatever order the shards
    ran or arrived in, byte-identical to a serial in-process sweep of
    the same grid.

    Raises
    ------
    ShardMergeError
        If no artifacts are given, the artifacts fingerprint different
        grids, disagree on the grid size, cover a canonical index
        twice (duplicated shard), or leave indices uncovered (missing
        shard).  The message names the offending indices so the
        operator knows which shard to re-run or drop.
    """
    loaded = [_load(artifact) for artifact in artifacts]
    if not loaded:
        raise ShardMergeError("no shard artifacts to merge")

    reference = loaded[0]
    for artifact in loaded[1:]:
        if artifact.fingerprint != reference.fingerprint:
            raise ShardMergeError(
                f"shard artifacts fingerprint different grids: "
                f"{reference.fingerprint} (shard "
                f"{reference.shard_index}/{reference.shards}) vs "
                f"{artifact.fingerprint} (shard "
                f"{artifact.shard_index}/{artifact.shards})"
            )
        if artifact.order_digest != reference.order_digest:
            # Same point set, different canonical order: index-wise
            # merging would pair rows with the wrong points.
            raise ShardMergeError(
                f"shard artifacts enumerate the same grid in a "
                f"different point order (order digest "
                f"{reference.order_digest} vs {artifact.order_digest}): "
                f"re-run the shards with identically-ordered axes"
            )
        if artifact.total_points != reference.total_points:
            raise ShardMergeError(
                f"shard artifacts disagree on the grid size: "
                f"{reference.total_points} vs {artifact.total_points} "
                f"points"
            )

    total = reference.total_points
    by_index: dict[int, tuple[SweepRow, ...]] = {}
    duplicates: set[int] = set()
    for artifact in loaded:
        for index, rows in zip(artifact.indices, artifact.rows_per_point):
            if not (0 <= index < total):
                raise ShardMergeError(
                    f"shard {artifact.shard_index}/{artifact.shards} "
                    f"carries point index {index}, outside the "
                    f"{total}-point grid"
                )
            if index in by_index:
                duplicates.add(index)
            else:
                by_index[index] = rows
    if duplicates:
        raise ShardMergeError(
            f"duplicated point indices across shard artifacts: "
            f"{_summarise_indices(sorted(duplicates))} "
            f"(the same shard was merged twice?)"
        )
    missing = [i for i in range(total) if i not in by_index]
    if missing:
        raise ShardMergeError(
            f"missing point indices {_summarise_indices(missing)} of "
            f"{total}: a shard artifact was not merged"
        )

    rows: list[SweepRow] = []
    for index in range(total):
        rows.extend(by_index[index])
    return SweepReport(
        cells=(),
        rows=tuple(rows),
        cache_stats=merge_cache_states(
            artifact.cache_state for artifact in loaded
        ),
    )


class ShardedExecutor:
    """The shard partitioning as an in-process execution engine.

    Partitions the grid with :func:`shard_indices` — exactly the runs
    the cross-host flow would distribute — and evaluates each shard
    sequentially through an inner engine against the caller's shared
    cache.  Because the cache is shared, memoisation still spans
    shard boundaries and the engine is byte-identical to serial with
    only partition bookkeeping as overhead; the cold-cache cross-host
    behaviour is exercised by :func:`run_shard` /
    :func:`merge_shard_artifacts` instead.
    """

    name = "sharded"

    def __init__(
        self,
        shards: Optional[int] = None,
        inner: Optional[Executor] = None,
    ) -> None:
        if shards is None:
            shards = os.cpu_count() or 1
        if shards < 1:
            raise SpecificationError(
                f"sharded engine needs at least 1 shard, got {shards}"
            )
        self.shards = shards
        self.inner = inner if inner is not None else SerialExecutor()

    def run_sweep(
        self,
        points: Sequence[DesignPoint],
        candidate_factory: CandidateFactory,
        reference: int,
        weights: FomWeights,
        cache: EvaluationCache,
    ) -> list[SweepCell]:
        cells: list[Optional[SweepCell]] = [None] * len(points)
        for shard_index in range(self.shards):
            indices = shard_indices(len(points), self.shards, shard_index)
            shard_points = [points[i] for i in indices]
            if not shard_points:
                continue
            shard_cells = self.inner.run_sweep(
                shard_points, candidate_factory, reference, weights, cache
            )
            for index, cell in zip(indices, shard_cells):
                cells[index] = cell
        return cells
