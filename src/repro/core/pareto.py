"""Pareto-front analysis of build-ups.

The paper folds performance, size and cost into a single multiplicative
figure of merit; a multi-objective view is the natural companion: which
build-ups are *Pareto-optimal* (no other build-up is at least as good on
every axis and strictly better on one)?  A build-up dominated on all
three axes can be discarded regardless of how the axes are weighted —
which is exactly what happens to the paper's full-IP solution 3, beaten
by solution 4 on performance, size *and* cost.

Dominance itself is computed *vectorised*, by two kernels with one
semantics: :func:`first_dominators` broadcasts the three objective
arrays against themselves in bounded blocks and attributes the first
dominator per point (what :func:`pareto_front` needs);
:func:`nondominated_mask` answers only "who is on the front" by
successive O(front × n) filtering — the kernel behind
:meth:`repro.core.resultframe.ResultFrame.pareto_mask` on large
frames.  :func:`pareto_front_pointwise` keeps the original per-point
loop as the reference implementation (the same discipline as
``repro.circuits.twoport.sweep_pointwise``); all three are locked
equivalent by hypothesis in ``tests/core/test_resultframe.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import SpecificationError
from .methodology import StudyResult, StudyRow

#: Upper bound on ``n_points * block`` in the blocked dominance sweep —
#: caps the transient boolean broadcast buffers at a few megabytes
#: regardless of how many rows the caller throws at it.
_BLOCK_BUDGET = 4_000_000


@dataclass(frozen=True)
class ParetoPoint:
    """One build-up in objective space.

    Objectives are oriented so *larger is better* for performance and
    *smaller is better* for size and cost ratios.
    """

    name: str
    performance: float
    size_ratio: float
    cost_ratio: float

    def dominates(self, other: "ParetoPoint") -> bool:
        """True if this point is at least as good everywhere and
        strictly better somewhere."""
        at_least_as_good = (
            self.performance >= other.performance
            and self.size_ratio <= other.size_ratio
            and self.cost_ratio <= other.cost_ratio
        )
        strictly_better = (
            self.performance > other.performance
            or self.size_ratio < other.size_ratio
            or self.cost_ratio < other.cost_ratio
        )
        return at_least_as_good and strictly_better


@dataclass(frozen=True)
class ParetoAnalysis:
    """Partition of the candidates into front and dominated set."""

    front: tuple[ParetoPoint, ...]
    dominated: tuple[tuple[ParetoPoint, str], ...]

    def is_on_front(self, name: str) -> bool:
        """Whether the named build-up is Pareto-optimal."""
        return any(point.name == name for point in self.front)

    def dominator_of(self, name: str) -> str:
        """Name of a build-up dominating the given one.

        Raises
        ------
        SpecificationError
            If the build-up is on the front (nothing dominates it) or
            unknown.
        """
        for point, dominator in self.dominated:
            if point.name == name:
                return dominator
        raise SpecificationError(
            f"{name!r} is Pareto-optimal or unknown"
        )


def pareto_points(result: StudyResult) -> list[ParetoPoint]:
    """Extract the objective-space points from a study result."""
    return [_to_point(row) for row in result.rows]


def _to_point(row: StudyRow) -> ParetoPoint:
    return ParetoPoint(
        name=row.assessment.name,
        performance=row.fom.performance,
        size_ratio=row.fom.size_ratio,
        cost_ratio=row.fom.cost_ratio,
    )


def first_dominators(
    performance, size, cost
) -> np.ndarray:
    """Index of the first dominating point per point (``-1``: none).

    The attribution kernel behind :func:`pareto_front` (a mask alone
    is cheaper — use :func:`nondominated_mask` for that).  Point *i*
    dominates point *j* when it is at least as good on every objective
    (``performance`` maximised, ``size`` and ``cost`` minimised) and
    strictly better on one; the result matches the order the original
    per-point loop reported dominators in — the *lowest* dominating
    index — so the vectorised and pointwise paths name the same
    dominator.

    The pairwise comparison is evaluated in blocks of columns so the
    transient boolean broadcast buffers stay a few megabytes whatever
    ``n`` is; the arithmetic is still exact float comparison, never a
    tolerance.
    """
    perf = np.ascontiguousarray(performance, dtype=np.float64)
    size = np.ascontiguousarray(size, dtype=np.float64)
    cost = np.ascontiguousarray(cost, dtype=np.float64)
    if not (perf.shape == size.shape == cost.shape) or perf.ndim != 1:
        raise SpecificationError(
            "dominance needs three equally-long 1-D objective arrays, "
            f"got shapes {perf.shape}, {size.shape}, {cost.shape}"
        )
    n = perf.shape[0]
    dominator = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return dominator
    block = max(1, min(n, _BLOCK_BUDGET // n))
    for start in range(0, n, block):
        stop = min(start + block, n)
        p, s, c = perf[start:stop], size[start:stop], cost[start:stop]
        # dominates[i, j]: row point i dominates column point start+j.
        at_least = (
            (perf[:, None] >= p[None, :])
            & (size[:, None] <= s[None, :])
            & (cost[:, None] <= c[None, :])
        )
        strictly = (
            (perf[:, None] > p[None, :])
            | (size[:, None] < s[None, :])
            | (cost[:, None] < c[None, :])
        )
        dominates = at_least & strictly
        found = dominates.any(axis=0)
        first = dominates.argmax(axis=0)
        view = dominator[start:stop]
        view[found] = first[found]
    return dominator


def margin_dominators(
    performance, size, cost, margin: float = 0.0
) -> np.ndarray:
    """Index of the first point dominating a margin-boosted copy (``-1``: none).

    Generalises :func:`first_dominators` for near-front queries: each
    column point *j* is replaced by a fictitious improved copy — its
    performance scaled up by ``1 + margin`` and its size and cost ratios
    scaled down by the same factor — and that copy is tested against the
    *original* points.  A point whose boosted copy is still dominated
    sits decisively behind the front; a point that survives is on the
    front or within the relative margin of it.  With ``margin = 0`` the
    boost is the identity (multiplying and dividing by exactly ``1.0``)
    and the verdicts coincide with :func:`first_dominators` bit for bit.

    Objectives are assumed non-negative, as everywhere in the study
    (performance figures and percent ratios); the margin is a relative
    factor, so it composes with the log-scale volume axis the adaptive
    driver refines.
    """
    if not np.isfinite(margin) or margin < 0.0:
        raise SpecificationError(
            f"dominance margin must be a finite non-negative factor, got {margin!r}"
        )
    perf = np.ascontiguousarray(performance, dtype=np.float64)
    size = np.ascontiguousarray(size, dtype=np.float64)
    cost = np.ascontiguousarray(cost, dtype=np.float64)
    if not (perf.shape == size.shape == cost.shape) or perf.ndim != 1:
        raise SpecificationError(
            "dominance needs three equally-long 1-D objective arrays, "
            f"got shapes {perf.shape}, {size.shape}, {cost.shape}"
        )
    boost = 1.0 + margin
    n = perf.shape[0]
    dominator = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return dominator
    block = max(1, min(n, _BLOCK_BUDGET // n))
    for start in range(0, n, block):
        stop = min(start + block, n)
        p = perf[start:stop] * boost
        s = size[start:stop] / boost
        c = cost[start:stop] / boost
        # dominates[i, j]: original point i dominates the boosted copy
        # of column point start+j.
        at_least = (
            (perf[:, None] >= p[None, :])
            & (size[:, None] <= s[None, :])
            & (cost[:, None] <= c[None, :])
        )
        strictly = (
            (perf[:, None] > p[None, :])
            | (size[:, None] < s[None, :])
            | (cost[:, None] < c[None, :])
        )
        dominates = at_least & strictly
        found = dominates.any(axis=0)
        first = dominates.argmax(axis=0)
        view = dominator[start:stop]
        view[found] = first[found]
    return dominator


def nondominated_mask(performance, size, cost) -> np.ndarray:
    """Boolean mask of the Pareto-optimal points (vectorised).

    Successive non-dominated filtering: scan the surviving points in
    order and discard everything the scanned point dominates, so each
    pass is one vectorised comparison against the (shrinking) survivor
    set and the total cost is O(front_size × n) — *not* the full n²
    pairwise matrix :func:`first_dominators` evaluates (that one also
    attributes a dominator per point, which the mask does not need).
    Exact duplicates of a front point survive, matching the scalar
    definition: equal points never dominate each other.

    Equivalence with the per-point reference loop is hypothesis-locked
    in ``tests/core/test_resultframe.py``.
    """
    perf = np.asarray(performance, dtype=np.float64)
    size = np.asarray(size, dtype=np.float64)
    cost = np.asarray(cost, dtype=np.float64)
    if not (perf.shape == size.shape == cost.shape) or perf.ndim != 1:
        raise SpecificationError(
            "dominance needs three equally-long 1-D objective arrays, "
            f"got shapes {perf.shape}, {size.shape}, {cost.shape}"
        )
    # Orient every objective for minimisation.
    objectives = np.column_stack([-perf, size, cost])
    n = objectives.shape[0]
    alive = np.arange(n)
    scan = 0
    while scan < objectives.shape[0]:
        pivot = objectives[scan]
        # Drop exactly the points the pivot dominates: at least as
        # good everywhere, strictly better somewhere.  The literal
        # scalar definition, so duplicates survive (never strictly
        # better) and NaN-bearing rows/pivots survive too (every NaN
        # comparison is False on both sides) — identical verdicts to
        # :func:`first_dominators` and the pointwise loop.
        dominated = np.all(pivot <= objectives, axis=1) & np.any(
            pivot < objectives, axis=1
        )
        keep = ~dominated
        objectives = objectives[keep]
        alive = alive[keep]
        scan = int(np.count_nonzero(keep[:scan])) + 1
    mask = np.zeros(n, dtype=bool)
    mask[alive] = True
    return mask


def _analysis_from_dominators(
    points: Sequence[ParetoPoint], dominator: np.ndarray
) -> ParetoAnalysis:
    front: list[ParetoPoint] = []
    dominated: list[tuple[ParetoPoint, str]] = []
    for point, index in zip(points, dominator.tolist()):
        if index < 0:
            front.append(point)
        else:
            dominated.append((point, points[index].name))
    return ParetoAnalysis(front=tuple(front), dominated=tuple(dominated))


def pareto_front(points: Sequence[ParetoPoint]) -> ParetoAnalysis:
    """Partition points into the Pareto front and the dominated set.

    Vectorised over all points at once (:func:`first_dominators`);
    byte-identical to :func:`pareto_front_pointwise`, which keeps the
    original per-point loop as the reference implementation.
    """
    if not points:
        raise SpecificationError("pareto_front needs at least one point")
    dominator = first_dominators(
        [point.performance for point in points],
        [point.size_ratio for point in points],
        [point.cost_ratio for point in points],
    )
    return _analysis_from_dominators(points, dominator)


def pareto_front_pointwise(
    points: Sequence[ParetoPoint],
) -> ParetoAnalysis:
    """The original O(n²) per-point dominance loop.

    Kept as the reference implementation :func:`pareto_front` must
    reproduce exactly — the same discipline as the pointwise MNA sweep
    (``repro.circuits.twoport.sweep_pointwise``) — and as the
    row-object baseline of ``benchmarks/test_frame_speed.py``.
    """
    if not points:
        raise SpecificationError("pareto_front needs at least one point")
    front: list[ParetoPoint] = []
    dominated: list[tuple[ParetoPoint, str]] = []
    for point in points:
        dominator = next(
            (
                other
                for other in points
                if other is not point and other.dominates(point)
            ),
            None,
        )
        if dominator is None:
            front.append(point)
        else:
            dominated.append((point, dominator.name))
    return ParetoAnalysis(front=tuple(front), dominated=tuple(dominated))


def analyze_study(result: StudyResult) -> ParetoAnalysis:
    """Pareto analysis of a complete study."""
    return pareto_front(pareto_points(result))
