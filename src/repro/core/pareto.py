"""Pareto-front analysis of build-ups.

The paper folds performance, size and cost into a single multiplicative
figure of merit; a multi-objective view is the natural companion: which
build-ups are *Pareto-optimal* (no other build-up is at least as good on
every axis and strictly better on one)?  A build-up dominated on all
three axes can be discarded regardless of how the axes are weighted —
which is exactly what happens to the paper's full-IP solution 3, beaten
by solution 4 on performance, size *and* cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import SpecificationError
from .methodology import StudyResult, StudyRow


@dataclass(frozen=True)
class ParetoPoint:
    """One build-up in objective space.

    Objectives are oriented so *larger is better* for performance and
    *smaller is better* for size and cost ratios.
    """

    name: str
    performance: float
    size_ratio: float
    cost_ratio: float

    def dominates(self, other: "ParetoPoint") -> bool:
        """True if this point is at least as good everywhere and
        strictly better somewhere."""
        at_least_as_good = (
            self.performance >= other.performance
            and self.size_ratio <= other.size_ratio
            and self.cost_ratio <= other.cost_ratio
        )
        strictly_better = (
            self.performance > other.performance
            or self.size_ratio < other.size_ratio
            or self.cost_ratio < other.cost_ratio
        )
        return at_least_as_good and strictly_better


@dataclass(frozen=True)
class ParetoAnalysis:
    """Partition of the candidates into front and dominated set."""

    front: tuple[ParetoPoint, ...]
    dominated: tuple[tuple[ParetoPoint, str], ...]

    def is_on_front(self, name: str) -> bool:
        """Whether the named build-up is Pareto-optimal."""
        return any(point.name == name for point in self.front)

    def dominator_of(self, name: str) -> str:
        """Name of a build-up dominating the given one.

        Raises
        ------
        SpecificationError
            If the build-up is on the front (nothing dominates it) or
            unknown.
        """
        for point, dominator in self.dominated:
            if point.name == name:
                return dominator
        raise SpecificationError(
            f"{name!r} is Pareto-optimal or unknown"
        )


def pareto_points(result: StudyResult) -> list[ParetoPoint]:
    """Extract the objective-space points from a study result."""
    return [_to_point(row) for row in result.rows]


def _to_point(row: StudyRow) -> ParetoPoint:
    return ParetoPoint(
        name=row.assessment.name,
        performance=row.fom.performance,
        size_ratio=row.fom.size_ratio,
        cost_ratio=row.fom.cost_ratio,
    )


def pareto_front(points: Sequence[ParetoPoint]) -> ParetoAnalysis:
    """Partition points into the Pareto front and the dominated set."""
    if not points:
        raise SpecificationError("pareto_front needs at least one point")
    front: list[ParetoPoint] = []
    dominated: list[tuple[ParetoPoint, str]] = []
    for point in points:
        dominator = next(
            (
                other
                for other in points
                if other is not point and other.dominates(point)
            ),
            None,
        )
        if dominator is None:
            front.append(point)
        else:
            dominated.append((point, dominator.name))
    return ParetoAnalysis(front=tuple(front), dominated=tuple(dominated))


def analyze_study(result: StudyResult) -> ParetoAnalysis:
    """Pareto analysis of a complete study."""
    return pareto_front(pareto_points(result))
