"""Tolerance and laser-trimming models (paper §2).

The paper's first "show killer" for integrated passives is tolerance:
as-fabricated thin-film resistors scatter by about 15 %, which is too
coarse for precision networks; laser trimming brings them below 1 % at
extra process cost.  This module provides:

* :class:`ToleranceModel` — a distribution over realised component values,
  used for Monte Carlo yield analysis of filter networks;
* :func:`trim_plan` — decide which resistors of a bill of materials need
  trimming and price the trim step;
* :func:`value_yield` — the probability that a realised value falls inside
  a requirement window, under a Gaussian scatter model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import ComponentError
from .component import PassiveKind, PassiveRequirement

#: 3-sigma convention: a quoted tolerance band is interpreted as +/-3 sigma
#: of the manufacturing scatter.
SIGMA_PER_TOLERANCE = 1.0 / 3.0


@dataclass(frozen=True)
class ToleranceModel:
    """Gaussian scatter of a component value around its nominal.

    Attributes
    ----------
    nominal:
        Nominal component value (base units).
    tolerance:
        Quoted relative tolerance band, interpreted as +/-3 sigma.
    """

    nominal: float
    tolerance: float

    def __post_init__(self) -> None:
        if self.nominal <= 0:
            raise ComponentError(
                f"nominal value must be positive, got {self.nominal}"
            )
        if not (0.0 < self.tolerance <= 1.0):
            raise ComponentError(
                f"tolerance must lie in (0, 1], got {self.tolerance}"
            )

    @property
    def sigma(self) -> float:
        """Absolute standard deviation of the realised value."""
        return self.nominal * self.tolerance * SIGMA_PER_TOLERANCE

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw realised values (clipped at zero from below)."""
        values = rng.normal(self.nominal, self.sigma, size=size)
        return np.clip(values, 1e-30, None)

    def within(self, window: float) -> float:
        """Probability the realised value is within ``+/-window`` relative.

        ``window`` is a relative half-width, e.g. ``0.05`` for +/-5 %.
        """
        if window <= 0:
            raise ComponentError(f"window must be positive, got {window}")
        z = window * self.nominal / self.sigma
        return math.erf(z / math.sqrt(2.0))


@dataclass(frozen=True)
class ToleranceClass:
    """A named tolerance regime for integrated passives.

    The design-space sweep subsystem
    (:mod:`repro.core.sweep`) varies the tolerance discipline of a
    build-up as one grid axis: how tight is the acceptance window per
    integrated component, what scatter do the as-fabricated (or trimmed)
    structures achieve, and what does trimming cost per structure.

    Attributes
    ----------
    name:
        Class label (e.g. ``"uncritical"``, ``"precision"``).
    achieved_tolerance:
        Relative +/-3-sigma scatter of the realised values (trimmed
        structures achieve the trimmed tolerance).
    acceptance_window:
        Relative half-width of the acceptance window per component.
    trim_cost_each:
        Per-structure laser-trim cost charged to the substrate (zero for
        untrimmed classes).
    """

    name: str
    achieved_tolerance: float
    acceptance_window: float
    trim_cost_each: float = 0.0

    def __post_init__(self) -> None:
        if not (0.0 < self.achieved_tolerance <= 1.0):
            raise ComponentError(
                "achieved tolerance must lie in (0, 1], got "
                f"{self.achieved_tolerance}"
            )
        if self.acceptance_window <= 0:
            raise ComponentError(
                f"acceptance window must be positive, got "
                f"{self.acceptance_window}"
            )
        if self.trim_cost_each < 0:
            raise ComponentError(
                f"trim cost cannot be negative, got {self.trim_cost_each}"
            )

    def component_yield(self) -> float:
        """Probability one structure lands inside its window."""
        model = ToleranceModel(
            nominal=1.0, tolerance=self.achieved_tolerance
        )
        return model.within(self.acceptance_window)

    def module_yield(self, component_count: int) -> float:
        """Joint probability that every structure on a module passes."""
        if component_count < 0:
            raise ComponentError(
                f"component count cannot be negative, got {component_count}"
            )
        return self.component_yield() ** component_count

    def trim_cost(self, component_count: int) -> float:
        """Total trim cost of a module with ``component_count`` structures."""
        if component_count < 0:
            raise ComponentError(
                f"component count cannot be negative, got {component_count}"
            )
        return self.trim_cost_each * component_count


#: Uncritical networks (decoupling, biasing): as-fabricated 15 % scatter
#: against a generous 45 % window — essentially every structure passes.
UNCRITICAL_CLASS = ToleranceClass(
    name="uncritical",
    achieved_tolerance=0.15,
    acceptance_window=0.45,
)

#: Matching-grade networks: as-fabricated scatter against a 20 % window;
#: the per-structure yield is high but no longer free on a 100-structure
#: substrate.
MATCHING_CLASS = ToleranceClass(
    name="matching",
    achieved_tolerance=0.15,
    acceptance_window=0.20,
)

#: Precision networks: every structure laser-trimmed to ~1 %, checked
#: against a 5 % window — near-unity yield bought with trim cost.
PRECISION_CLASS = ToleranceClass(
    name="precision",
    achieved_tolerance=0.01,
    acceptance_window=0.05,
    trim_cost_each=0.02,
)

#: Registry for CLI/sweep axis parsing.
TOLERANCE_CLASSES: dict[str, ToleranceClass] = {
    cls.name: cls
    for cls in (UNCRITICAL_CLASS, MATCHING_CLASS, PRECISION_CLASS)
}


def value_yield(
    requirement: PassiveRequirement, achieved_tolerance: float
) -> float:
    """Probability a part built to ``achieved_tolerance`` meets the spec.

    The requirement's tolerance defines the acceptance window; the achieved
    tolerance defines the scatter.  A part whose achieved tolerance is at
    or below the requirement passes with the 3-sigma probability (~99.7 %)
    or better.
    """
    model = ToleranceModel(
        nominal=requirement.value if requirement.value > 0 else 1.0,
        tolerance=achieved_tolerance,
    )
    return model.within(requirement.tolerance)


@dataclass(frozen=True)
class TrimDecision:
    """Trim decision for one requirement."""

    requirement: PassiveRequirement
    trim: bool
    reason: str


@dataclass(frozen=True)
class TrimPlan:
    """Which resistors to laser-trim, and what the trim step costs."""

    decisions: tuple[TrimDecision, ...]
    trim_count: int
    total_trim_cost: float


def trim_plan(
    requirements: Iterable[PassiveRequirement],
    as_fabricated_tolerance: float = 0.15,
    trim_cost_each: float = 0.02,
) -> TrimPlan:
    """Decide which resistors need laser trimming.

    A resistor is trimmed when its requirement is tighter than the
    as-fabricated tolerance.  Non-resistors are never trimmed (the paper
    only describes trimming for resistive films).
    """
    decisions: list[TrimDecision] = []
    count = 0
    for requirement in requirements:
        if requirement.kind is not PassiveKind.RESISTOR:
            decisions.append(
                TrimDecision(requirement, False, "not a resistor")
            )
            continue
        if requirement.tolerance < as_fabricated_tolerance:
            decisions.append(
                TrimDecision(
                    requirement,
                    True,
                    f"requires {requirement.tolerance:.1%} < "
                    f"as-fabricated {as_fabricated_tolerance:.1%}",
                )
            )
            count += 1
        else:
            decisions.append(
                TrimDecision(requirement, False, "as-fabricated suffices")
            )
    return TrimPlan(
        decisions=tuple(decisions),
        trim_count=count,
        total_trim_cost=count * trim_cost_each,
    )


def network_value_yield(
    models: Sequence[ToleranceModel],
    windows: Sequence[float],
) -> float:
    """Joint probability that every component lands in its window.

    Components are assumed independent (different structures on the same
    substrate share systematic offsets in reality; this is the optimistic
    bound the paper's 15 % figure implies).
    """
    if len(models) != len(windows):
        raise ComponentError(
            "models and windows must have the same length, got "
            f"{len(models)} and {len(windows)}"
        )
    probability = 1.0
    for model, window in zip(models, windows):
        probability *= model.within(window)
    return probability


def monte_carlo_network_yield(
    models: Sequence[ToleranceModel],
    windows: Sequence[float],
    trials: int = 10_000,
    seed: int = 0,
) -> float:
    """Monte Carlo estimate of :func:`network_value_yield`.

    Provided as an independent cross-check of the analytic product; the
    two agree for independent Gaussians, and the Monte Carlo path also
    accepts correlated extensions in subclasses.
    """
    if len(models) != len(windows):
        raise ComponentError(
            "models and windows must have the same length"
        )
    if trials < 1:
        raise ComponentError(f"trials must be >= 1, got {trials}")
    rng = np.random.default_rng(seed)
    passed = np.ones(trials, dtype=bool)
    for model, window in zip(models, windows):
        values = model.sample(rng, size=trials)
        relative_error = np.abs(values - model.nominal) / model.nominal
        passed &= relative_error <= window
    return float(passed.mean())
