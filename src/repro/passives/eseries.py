"""IEC 60063 preferred number (E-series) utilities.

Surface-mount passives only exist in preferred values (E12/E24/E96...),
while integrated passives can be fabricated at any value (and trimmed).
That asymmetry matters for the trade-off: an SMD realisation of an
arbitrary synthesised filter element must snap to the nearest preferred
value, adding a deterministic detuning error on top of the tolerance
scatter — an effect the integrated technology does not have.

This module provides the standard series, nearest-value snapping, and
the snap-error bound used by the tolerance analysis.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

from ..errors import ComponentError

#: The IEC 60063 base values per decade.  E3..E24 are the historically
#: rounded tables (not pure geometric progressions); E48/E96 follow the
#: computed two/three-digit roundings.
E_SERIES_BASES: dict[str, tuple[float, ...]] = {
    "E3": (1.0, 2.2, 4.7),
    "E6": (1.0, 1.5, 2.2, 3.3, 4.7, 6.8),
    "E12": (
        1.0, 1.2, 1.5, 1.8, 2.2, 2.7, 3.3, 3.9, 4.7, 5.6, 6.8, 8.2,
    ),
    "E24": (
        1.0, 1.1, 1.2, 1.3, 1.5, 1.6, 1.8, 2.0, 2.2, 2.4, 2.7, 3.0,
        3.3, 3.6, 3.9, 4.3, 4.7, 5.1, 5.6, 6.2, 6.8, 7.5, 8.2, 9.1,
    ),
    "E48": tuple(
        round(10.0 ** (i / 48.0), 2) for i in range(48)
    ),
    "E96": tuple(
        round(10.0 ** (i / 96.0), 2) for i in range(96)
    ),
}

#: Conventional tolerance attached to each series.
SERIES_TOLERANCE: dict[str, float] = {
    "E3": 0.40,
    "E6": 0.20,
    "E12": 0.10,
    "E24": 0.05,
    "E48": 0.02,
    "E96": 0.01,
}


@dataclass(frozen=True)
class SnappedValue:
    """Result of snapping a value to a preferred series."""

    requested: float
    snapped: float
    series: str

    @property
    def relative_error(self) -> float:
        """Signed relative detuning introduced by the snap."""
        return (self.snapped - self.requested) / self.requested


def series_values(series: str, decade_min: int = -15,
                  decade_max: int = 12) -> list[float]:
    """All preferred values of a series across a decade range."""
    bases = _bases(series)
    values = []
    for decade in range(decade_min, decade_max + 1):
        scale = 10.0**decade
        values.extend(base * scale for base in bases)
    return values


def _bases(series: str) -> tuple[float, ...]:
    try:
        return E_SERIES_BASES[series]
    except KeyError:
        known = ", ".join(sorted(E_SERIES_BASES))
        raise ComponentError(
            f"unknown E-series {series!r}; known: {known}"
        ) from None


def snap(value: float, series: str = "E24") -> SnappedValue:
    """Snap a positive value to the nearest preferred value.

    Nearest is measured in log space (relative error), matching how the
    series are constructed.
    """
    if value <= 0:
        raise ComponentError(f"value must be positive, got {value}")
    bases = _bases(series)
    decade = math.floor(math.log10(value))
    candidates = [
        base * 10.0**d
        for d in (decade - 1, decade, decade + 1)
        for base in bases
    ]
    candidates.sort()
    log_value = math.log10(value)
    i = bisect.bisect_left(candidates, value)
    best = None
    best_err = math.inf
    for j in (i - 1, i, i + 1):
        if 0 <= j < len(candidates):
            err = abs(math.log10(candidates[j]) - log_value)
            if err < best_err:
                best_err = err
                best = candidates[j]
    assert best is not None
    return SnappedValue(requested=value, snapped=best, series=series)


def max_snap_error(series: str) -> float:
    """Worst-case relative snap error of a series.

    Half the largest geometric gap between adjacent preferred values,
    expressed as a relative error.
    """
    bases = list(_bases(series)) + [10.0 * _bases(series)[0]]
    worst = 0.0
    for low, high in zip(bases, bases[1:]):
        midpoint_ratio = math.sqrt(high / low)
        worst = max(worst, midpoint_ratio - 1.0)
    return worst


def snap_all(values: list[float], series: str = "E24") -> list[SnappedValue]:
    """Snap a list of element values (e.g. a synthesised ladder)."""
    return [snap(value, series) for value in values]
