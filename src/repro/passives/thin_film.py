"""Thin-film integrated passive models (paper §2).

Integrated passives (IPs) are fabricated with the same process steps as the
substrate metallisation:

* **Resistors** are sputtered CrSi or NiCr layers (~10 nm), patterned as
  interconnection lines, meandered for large values.  The paper quotes a
  specific resistance of 360 ohm/sq (CrSi) and gives the example that a
  200 ohm resistor then needs about 0.01 mm^2.  Table 1 budgets 0.25 mm^2
  for a 100 kohm meander.
* **Capacitors** are MIM sandwiches or interdigitated combs with a high-k
  dielectric (Si3N4 or BaxTiOy); densities up to 100 pF/mm^2 with Si3N4 and
  higher with BaxTiOy.  Table 1 budgets 0.3 mm^2 for a 50 pF capacitor,
  i.e. an effective ~200 pF/mm^2 high-k stack including terminal overhead.
* **Inductors** are square spiral interconnection lines; the value is set
  by the number of turns, line width and spacing.  Table 1 budgets 1 mm^2
  for 40 nH.  We model the inductance with the modified Wheeler formula,
  which reproduces that budget with SUMMIT-like geometry (20 um lines and
  spaces, inner diameter = half the outer diameter).

All three models are physical (geometry in, area out) rather than lookup
tables, so the library can also price passives the paper never used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..errors import ComponentError, TechnologyError
from .component import (
    MountingStyle,
    PassiveKind,
    PassiveRealization,
    PassiveRequirement,
)

#: Vacuum permeability in H/m, used by the Wheeler spiral model.
MU0 = 4.0e-7 * math.pi

#: Modified-Wheeler coefficients for a square planar spiral
#: (Mohan et al., JSSC 1999).
WHEELER_K1 = 2.34
WHEELER_K2 = 2.75


@dataclass(frozen=True)
class ThinFilmProcess:
    """Parameters of one thin-film integrated-passives process.

    Attributes
    ----------
    name:
        Human-readable process label.
    sheet_resistance_ohm_sq:
        Resistive layer sheet resistance (360 ohm/sq for CrSi).
    resistor_tolerance:
        As-fabricated resistor tolerance (paper: ~15 %).
    trimmed_tolerance:
        Tolerance after laser trimming (paper: below 1 %).
    trim_cost:
        Additional per-resistor cost of the laser-trim step.
    cap_density_pf_mm2:
        Capacitance density of the MIM stack in pF/mm^2.
    cap_tolerance:
        As-fabricated capacitor tolerance.
    cap_overhead_mm2:
        Fixed per-capacitor terminal/guard overhead.
    metal_sheet_resistance_ohm_sq:
        Interconnect metal sheet resistance; sets inductor series loss.
    line_width_mm / line_spacing_mm:
        Default conductor width and spacing for meanders and spirals.
    resistor_pad_area_mm2:
        Fixed contact-pad area per resistor terminal.
    inductor_margin_mm:
        Keep-out margin around a spiral on each side.
    substrate_q_ref / substrate_q_ref_hz:
        Substrate (eddy/dielectric) loss of spiral inductors, modelled
        as ``Q_sub(f) = substrate_q_ref * substrate_q_ref_hz / f``.
        Consumed by :func:`repro.circuits.qfactor.process_q_model` when
        building the process's technology Q model.
    cap_tan_delta:
        Dielectric loss tangent of the MIM capacitor stack (flat with
        frequency at this level; frequency-dependent dielectric loss is
        modelled by
        :class:`repro.circuits.qfactor.SubstrateLossQModel`).
    """

    name: str
    sheet_resistance_ohm_sq: float
    resistor_tolerance: float = 0.15
    trimmed_tolerance: float = 0.01
    trim_cost: float = 0.02
    cap_density_pf_mm2: float = 100.0
    cap_tolerance: float = 0.15
    cap_overhead_mm2: float = 0.05
    metal_sheet_resistance_ohm_sq: float = 0.009
    line_width_mm: float = 0.020
    line_spacing_mm: float = 0.020
    resistor_pad_area_mm2: float = 0.014
    inductor_margin_mm: float = 0.020
    substrate_q_ref: float = 200.0
    substrate_q_ref_hz: float = 1.0e9
    cap_tan_delta: float = 0.005

    def __post_init__(self) -> None:
        if self.sheet_resistance_ohm_sq <= 0:
            raise TechnologyError(
                "sheet resistance must be positive, got "
                f"{self.sheet_resistance_ohm_sq}"
            )
        if self.cap_density_pf_mm2 <= 0:
            raise TechnologyError(
                f"capacitance density must be positive, got "
                f"{self.cap_density_pf_mm2}"
            )
        if self.line_width_mm <= 0 or self.line_spacing_mm < 0:
            raise TechnologyError(
                "line width must be positive and spacing non-negative"
            )
        if self.substrate_q_ref <= 0 or self.substrate_q_ref_hz <= 0:
            raise TechnologyError(
                "substrate Q reference and its frequency must be positive"
            )
        if self.cap_tan_delta <= 0:
            raise TechnologyError(
                f"capacitor loss tangent must be positive, got "
                f"{self.cap_tan_delta}"
            )


#: The SUMMIT MCM-D(Si) process used by the GPS demonstrator.  CrSi
#: resistive layer at 360 ohm/sq; high-k (BaxTiOy) capacitor stack whose
#: effective density reproduces Table 1's 0.3 mm^2 for 50 pF.
SUMMIT_PROCESS = ThinFilmProcess(
    name="SUMMIT MCM-D(Si)",
    sheet_resistance_ohm_sq=360.0,
    cap_density_pf_mm2=200.0,
)

#: A conservative Si3N4-dielectric process (paper §2: "up to 100 pF/mm^2").
SI3N4_PROCESS = ThinFilmProcess(
    name="Si3N4 thin film",
    sheet_resistance_ohm_sq=360.0,
    cap_density_pf_mm2=100.0,
)

#: NiCr resistive-layer variant (paper §2 names NiCr as the alternative).
NICR_PROCESS = ThinFilmProcess(
    name="NiCr thin film",
    sheet_resistance_ohm_sq=200.0,
    cap_density_pf_mm2=100.0,
)

#: Short-name registry used by the design-space sweep axis / CLI parsing.
THIN_FILM_PROCESSES: dict[str, ThinFilmProcess] = {
    "summit": SUMMIT_PROCESS,
    "si3n4": SI3N4_PROCESS,
    "nicr": NICR_PROCESS,
}


# ---------------------------------------------------------------------------
# Resistors
# ---------------------------------------------------------------------------

def resistor_squares(resistance_ohm: float, process: ThinFilmProcess) -> float:
    """Number of squares of resistive film needed for ``resistance_ohm``."""
    if resistance_ohm <= 0:
        raise ComponentError(
            f"resistance must be positive, got {resistance_ohm}"
        )
    return resistance_ohm / process.sheet_resistance_ohm_sq


def resistor_area_mm2(
    resistance_ohm: float,
    process: ThinFilmProcess,
    line_width_mm: float | None = None,
) -> float:
    """Substrate area of an integrated resistor.

    A resistor of ``n`` squares drawn at width ``w`` with meander pitch
    ``w + s`` occupies ``n * w * (w + s)`` of film area, plus two contact
    pads.  Short resistors (under one square) are pad-dominated.

    With SUMMIT defaults this reproduces Table 1: a 100 kohm CrSi meander
    occupies ~0.25 mm^2.  With a 100 um line (low-value power-capable
    geometry) it reproduces the paper's §2 example of ~0.01 mm^2 for
    200 ohm.
    """
    width = process.line_width_mm if line_width_mm is None else line_width_mm
    if width <= 0:
        raise ComponentError(f"line width must be positive, got {width}")
    squares = resistor_squares(resistance_ohm, process)
    pitch = width + process.line_spacing_mm
    film_area = squares * width * pitch
    pads = 2.0 * process.resistor_pad_area_mm2
    return film_area + pads


def realize_resistor(
    requirement: PassiveRequirement,
    process: ThinFilmProcess = SUMMIT_PROCESS,
    trimmed: bool | None = None,
    line_width_mm: float | None = None,
) -> PassiveRealization:
    """Realise a resistor requirement as a thin-film structure.

    If ``trimmed`` is ``None``, laser trimming is applied automatically
    whenever the as-fabricated tolerance would miss the requirement.
    """
    if requirement.kind is not PassiveKind.RESISTOR:
        raise ComponentError(
            f"realize_resistor needs a RESISTOR requirement, got "
            f"{requirement.kind.name}"
        )
    if trimmed is None:
        trimmed = process.resistor_tolerance > requirement.tolerance
    tolerance = (
        process.trimmed_tolerance if trimmed else process.resistor_tolerance
    )
    area = resistor_area_mm2(requirement.value, process, line_width_mm)
    squares = resistor_squares(requirement.value, process)
    detail = (
        f"{process.name}: {squares:.3g} sq at "
        f"{process.sheet_resistance_ohm_sq:g} ohm/sq"
        + (", laser trimmed" if trimmed else "")
    )
    return PassiveRealization(
        requirement=requirement,
        mounting=MountingStyle.INTEGRATED,
        technology=process.name,
        area_mm2=area,
        tolerance=tolerance,
        unit_cost=process.trim_cost if trimmed else 0.0,
        needs_assembly=False,
        detail=detail,
    )


# ---------------------------------------------------------------------------
# Capacitors
# ---------------------------------------------------------------------------

def capacitor_area_mm2(
    capacitance_f: float, process: ThinFilmProcess
) -> float:
    """Substrate area of an integrated MIM capacitor.

    Plate area follows directly from the stack density; a fixed terminal
    overhead is added.  With SUMMIT defaults this reproduces Table 1:
    50 pF occupies 0.3 mm^2.  It also exposes the paper's decoupling
    problem: a 1 nF decap needs ~5 mm^2, several times an 0603 footprint.
    """
    if capacitance_f <= 0:
        raise ComponentError(
            f"capacitance must be positive, got {capacitance_f}"
        )
    picofarads = capacitance_f * 1e12
    plate = picofarads / process.cap_density_pf_mm2
    return plate + process.cap_overhead_mm2


def realize_capacitor(
    requirement: PassiveRequirement,
    process: ThinFilmProcess = SUMMIT_PROCESS,
) -> PassiveRealization:
    """Realise a capacitor requirement as an integrated MIM structure."""
    if requirement.kind is not PassiveKind.CAPACITOR:
        raise ComponentError(
            f"realize_capacitor needs a CAPACITOR requirement, got "
            f"{requirement.kind.name}"
        )
    area = capacitor_area_mm2(requirement.value, process)
    return PassiveRealization(
        requirement=requirement,
        mounting=MountingStyle.INTEGRATED,
        technology=process.name,
        area_mm2=area,
        tolerance=process.cap_tolerance,
        unit_cost=0.0,
        needs_assembly=False,
        detail=(
            f"{process.name}: MIM at {process.cap_density_pf_mm2:g} pF/mm^2"
        ),
    )


# ---------------------------------------------------------------------------
# Inductors (square spiral, modified Wheeler)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SpiralInductorDesign:
    """A synthesised square spiral inductor.

    Attributes
    ----------
    inductance_h:
        Target inductance in henry.
    turns:
        Number of turns (fractional turns are allowed by the model).
    outer_dim_mm:
        Outer side length of the square spiral.
    area_mm2:
        Substrate area including keep-out margin.
    series_resistance_ohm:
        DC series resistance of the wound conductor.
    """

    inductance_h: float
    turns: float
    outer_dim_mm: float
    area_mm2: float
    series_resistance_ohm: float

    def q_factor(self, frequency_hz: float) -> float:
        """Unloaded quality factor ``Q = omega L / R_s`` at ``frequency_hz``.

        This is the conductor-loss-limited Q; substrate-loss roll-off near
        self-resonance is handled by :mod:`repro.circuits.qfactor`.
        """
        if frequency_hz <= 0:
            raise ComponentError(
                f"frequency must be positive, got {frequency_hz}"
            )
        omega = 2.0 * math.pi * frequency_hz
        return omega * self.inductance_h / self.series_resistance_ohm


def design_spiral_inductor(
    inductance_h: float,
    process: ThinFilmProcess = SUMMIT_PROCESS,
    fill_ratio: float = 0.5,
) -> SpiralInductorDesign:
    """Synthesise a square spiral for a target inductance.

    The modified Wheeler formula for a square spiral is::

        L = K1 * mu0 * n^2 * d_avg / (1 + K2 * rho)

    with ``d_avg = (d_out + d_in) / 2`` and fill factor
    ``rho = (d_out - d_in) / (d_out + d_in)``.  Holding the geometry family
    fixed (``d_in = fill_ratio * d_out``; ``n`` turns of pitch ``w + s``
    fill the winding annulus) makes ``L`` proportional to ``n^3``, which we
    invert in closed form.

    With SUMMIT defaults, 40 nH synthesises to ~6 turns in ~1 mm^2,
    matching Table 1.
    """
    if inductance_h <= 0:
        raise ComponentError(
            f"inductance must be positive, got {inductance_h}"
        )
    if not (0.0 < fill_ratio < 1.0):
        raise ComponentError(
            f"fill_ratio must lie in (0, 1), got {fill_ratio}"
        )
    pitch_mm = process.line_width_mm + process.line_spacing_mm
    pitch_m = pitch_mm * 1e-3
    # Winding annulus: n * pitch = (d_out - d_in) / 2 = d_out (1 - fr) / 2
    # => d_out = 2 n pitch / (1 - fr)
    # d_avg = d_out (1 + fr) / 2 ; rho = (1 - fr) / (1 + fr)
    rho = (1.0 - fill_ratio) / (1.0 + fill_ratio)
    geometry = (
        WHEELER_K1
        * MU0
        * (1.0 + fill_ratio)
        * pitch_m
        / ((1.0 - fill_ratio) * (1.0 + WHEELER_K2 * rho))
    )
    # L = geometry * n^3
    turns = (inductance_h / geometry) ** (1.0 / 3.0)
    if turns < 1.0:
        turns = 1.0
    outer_m = 2.0 * turns * pitch_m / (1.0 - fill_ratio)
    outer_mm = outer_m * 1e3
    side_mm = outer_mm + 2.0 * process.inductor_margin_mm
    area = side_mm * side_mm
    d_avg_mm = outer_mm * (1.0 + fill_ratio) / 2.0
    length_mm = 4.0 * turns * d_avg_mm
    series_r = (
        process.metal_sheet_resistance_ohm_sq
        * length_mm
        / process.line_width_mm
    )
    return SpiralInductorDesign(
        inductance_h=inductance_h,
        turns=turns,
        outer_dim_mm=outer_mm,
        area_mm2=area,
        series_resistance_ohm=series_r,
    )


def inductor_area_mm2(
    inductance_h: float, process: ThinFilmProcess = SUMMIT_PROCESS
) -> float:
    """Substrate area of an integrated spiral inductor."""
    return design_spiral_inductor(inductance_h, process).area_mm2


def realize_inductor(
    requirement: PassiveRequirement,
    process: ThinFilmProcess = SUMMIT_PROCESS,
) -> PassiveRealization:
    """Realise an inductor requirement as a square spiral."""
    if requirement.kind is not PassiveKind.INDUCTOR:
        raise ComponentError(
            f"realize_inductor needs an INDUCTOR requirement, got "
            f"{requirement.kind.name}"
        )
    design = design_spiral_inductor(requirement.value, process)
    return PassiveRealization(
        requirement=requirement,
        mounting=MountingStyle.INTEGRATED,
        technology=process.name,
        area_mm2=design.area_mm2,
        tolerance=0.10,
        unit_cost=0.0,
        needs_assembly=False,
        detail=(
            f"{process.name}: {design.turns:.2f}-turn spiral, "
            f"{design.outer_dim_mm:.2f} mm outer, "
            f"Rs={design.series_resistance_ohm:.2f} ohm"
        ),
    )


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------

#: Area of an integrated lumped-element bandpass filter (Table 1:
#: "Integrated: 12 mm^2 (3 stage)").
INTEGRATED_FILTER_AREA_MM2 = 12.0


def realize_integrated(
    requirement: PassiveRequirement,
    process: ThinFilmProcess = SUMMIT_PROCESS,
) -> PassiveRealization:
    """Realise any passive requirement in thin film.

    Dispatches on the requirement kind; filter blocks use the Table 1
    3-stage lumped-filter area budget.
    """
    if requirement.kind is PassiveKind.RESISTOR:
        return realize_resistor(requirement, process)
    if requirement.kind is PassiveKind.CAPACITOR:
        return realize_capacitor(requirement, process)
    if requirement.kind is PassiveKind.INDUCTOR:
        return realize_inductor(requirement, process)
    if requirement.kind is PassiveKind.FILTER:
        return PassiveRealization(
            requirement=requirement,
            mounting=MountingStyle.INTEGRATED,
            technology=process.name,
            area_mm2=INTEGRATED_FILTER_AREA_MM2,
            tolerance=process.cap_tolerance,
            unit_cost=0.0,
            needs_assembly=False,
            detail=f"{process.name}: 3-stage lumped filter",
        )
    raise ComponentError(f"unsupported kind {requirement.kind!r}")


def with_cap_density(
    process: ThinFilmProcess, density_pf_mm2: float
) -> ThinFilmProcess:
    """Derive a process variant with a different capacitor stack density."""
    return replace(process, cap_density_pf_mm2=density_pf_mm2)


def with_loss(
    process: ThinFilmProcess,
    cap_tan_delta: float | None = None,
    substrate_q_ref: float | None = None,
) -> ThinFilmProcess:
    """Derive a process variant with different loss parameters.

    The knob behind "at what loss tangent does thin film stop
    winning?"-style sweeps: the returned process feeds
    :func:`repro.circuits.qfactor.process_q_model` with a lossier (or
    cleaner) dielectric / substrate while keeping every area and cost
    parameter identical.
    """
    updates: dict[str, float] = {}
    if cap_tan_delta is not None:
        updates["cap_tan_delta"] = cap_tan_delta
    if substrate_q_ref is not None:
        updates["substrate_q_ref"] = substrate_q_ref
    return replace(process, **updates)
