"""Passive-component technology libraries.

Public surface:

* :mod:`repro.passives.component` — requirement/realization abstractions
  and bills of materials;
* :mod:`repro.passives.smd` — surface-mount catalog (Fig. 1 data);
* :mod:`repro.passives.thin_film` — integrated thin-film models (§2);
* :mod:`repro.passives.tolerance` — scatter and laser-trim models;
* :mod:`repro.passives.filters` — filter-block components.
"""

from .component import (
    BillOfMaterials,
    BomLine,
    MountingStyle,
    PassiveKind,
    PassiveRealization,
    PassiveRequirement,
    PassiveRole,
)
from .eseries import (
    E_SERIES_BASES,
    SERIES_TOLERANCE,
    SnappedValue,
    max_snap_error,
    series_values,
    snap,
    snap_all,
)
from .filters import (
    FilterBank,
    FilterBlock,
    FilterFamily,
    FilterSpec,
    realize_integrated_filter,
    realize_smd_filter,
)
from .smd import (
    CASE_SIZES,
    FIG1_ORDER,
    SMD_FILTER_AREA_MM2,
    SmdCaseSize,
    fig1_series,
    get_case,
    realize_smd,
)
from .thin_film import (
    INTEGRATED_FILTER_AREA_MM2,
    NICR_PROCESS,
    SI3N4_PROCESS,
    SUMMIT_PROCESS,
    THIN_FILM_PROCESSES,
    SpiralInductorDesign,
    ThinFilmProcess,
    capacitor_area_mm2,
    design_spiral_inductor,
    inductor_area_mm2,
    realize_capacitor,
    realize_inductor,
    realize_integrated,
    realize_resistor,
    resistor_area_mm2,
    resistor_squares,
    with_cap_density,
)
from .tolerance import (
    MATCHING_CLASS,
    PRECISION_CLASS,
    TOLERANCE_CLASSES,
    ToleranceClass,
    ToleranceModel,
    TrimDecision,
    TrimPlan,
    UNCRITICAL_CLASS,
    monte_carlo_network_yield,
    network_value_yield,
    trim_plan,
    value_yield,
)

__all__ = [
    "BillOfMaterials",
    "BomLine",
    "CASE_SIZES",
    "E_SERIES_BASES",
    "FIG1_ORDER",
    "FilterBank",
    "FilterBlock",
    "FilterFamily",
    "FilterSpec",
    "INTEGRATED_FILTER_AREA_MM2",
    "MATCHING_CLASS",
    "MountingStyle",
    "NICR_PROCESS",
    "PRECISION_CLASS",
    "PassiveKind",
    "PassiveRealization",
    "PassiveRequirement",
    "PassiveRole",
    "SI3N4_PROCESS",
    "SERIES_TOLERANCE",
    "SMD_FILTER_AREA_MM2",
    "SUMMIT_PROCESS",
    "THIN_FILM_PROCESSES",
    "SnappedValue",
    "SmdCaseSize",
    "SpiralInductorDesign",
    "ThinFilmProcess",
    "TOLERANCE_CLASSES",
    "ToleranceClass",
    "ToleranceModel",
    "UNCRITICAL_CLASS",
    "TrimDecision",
    "TrimPlan",
    "capacitor_area_mm2",
    "design_spiral_inductor",
    "fig1_series",
    "get_case",
    "inductor_area_mm2",
    "max_snap_error",
    "monte_carlo_network_yield",
    "network_value_yield",
    "realize_capacitor",
    "realize_inductor",
    "realize_integrated",
    "realize_integrated_filter",
    "realize_resistor",
    "realize_smd",
    "realize_smd_filter",
    "resistor_area_mm2",
    "series_values",
    "snap",
    "snap_all",
    "resistor_squares",
    "trim_plan",
    "value_yield",
    "with_cap_density",
]
