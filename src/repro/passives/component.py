"""Core passive-component abstractions.

The library distinguishes between a *requirement* — "this design needs a
200 ohm resistor with at most 5 % tolerance" — and a *realization* — "that
requirement is met by an 0603 SMD chip resistor" or "by a CrSi thin-film
meander occupying 0.01 mm^2 of the substrate".

:class:`PassiveRequirement` captures the electrical need; concrete
realizations (SMD parts in :mod:`repro.passives.smd`, thin-film structures
in :mod:`repro.passives.thin_film`) expose a common interface —
:attr:`~PassiveRealization.area_mm2`, :attr:`~PassiveRealization.tolerance`,
:attr:`~PassiveRealization.unit_cost` — so the trade-off engine can compare
them without caring how they are built.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ComponentError


class PassiveKind(enum.Enum):
    """The electrical species of a passive component."""

    RESISTOR = "R"
    CAPACITOR = "C"
    INDUCTOR = "L"
    FILTER = "filter"

    @property
    def base_unit(self) -> str:
        """Base SI unit for the component value (empty for filters)."""
        return {
            PassiveKind.RESISTOR: "ohm",
            PassiveKind.CAPACITOR: "F",
            PassiveKind.INDUCTOR: "H",
            PassiveKind.FILTER: "",
        }[self]


class MountingStyle(enum.Enum):
    """How a realization occupies the board or substrate."""

    #: Discrete part soldered onto the surface (consumes footprint area and
    #: an assembly step).
    SURFACE_MOUNT = "smd"
    #: Structure fabricated as part of the substrate metallisation
    #: (consumes substrate area but no assembly step).
    INTEGRATED = "integrated"


class PassiveRole(enum.Enum):
    """Functional role of a passive in the system.

    The role matters for the trade-off: decoupling capacitors are large
    when integrated (the paper's second "show killer"), while precision
    filter elements may not meet tolerance when integrated.
    """

    FILTERING = "filtering"
    MATCHING = "matching"
    DECOUPLING = "decoupling"
    PULL_UP = "pull-up"
    BIAS = "bias"
    GENERIC = "generic"


@dataclass(frozen=True)
class PassiveRequirement:
    """An electrical requirement for one passive component.

    Parameters
    ----------
    kind:
        Resistor, capacitor, inductor or filter block.
    value:
        Component value in base units (ohm / farad / henry).  Filters use
        ``value=0`` and are characterised by their spec instead.
    tolerance:
        Maximum acceptable relative tolerance (e.g. ``0.05`` for 5 %).
    role:
        Functional role; drives technology-selection heuristics.
    name:
        Reference designator, e.g. ``"R12"`` or ``"C_dec3"``.
    min_q:
        Minimum unloaded quality factor at ``q_frequency`` (RF parts).
    q_frequency:
        Frequency in Hz at which ``min_q`` applies.
    """

    kind: PassiveKind
    value: float
    tolerance: float = 0.15
    role: PassiveRole = PassiveRole.GENERIC
    name: str = ""
    min_q: Optional[float] = None
    q_frequency: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind is not PassiveKind.FILTER and self.value <= 0:
            raise ComponentError(
                f"{self.kind.name} requirement needs a positive value, "
                f"got {self.value}"
            )
        if not (0.0 < self.tolerance <= 1.0):
            raise ComponentError(
                f"tolerance must lie in (0, 1], got {self.tolerance}"
            )
        if (self.min_q is None) != (self.q_frequency is None):
            raise ComponentError(
                "min_q and q_frequency must be given together"
            )


@dataclass(frozen=True)
class PassiveRealization:
    """A concrete way of realising a :class:`PassiveRequirement`.

    Instances are produced by the technology libraries and consumed by the
    area and cost engines; they are deliberately technology-agnostic.

    Attributes
    ----------
    requirement:
        The requirement this realization satisfies.
    mounting:
        Surface-mount or integrated.
    technology:
        Free-text technology label, e.g. ``"0603"`` or ``"CrSi thin film"``.
    area_mm2:
        Area consumed on the board (including footprint/courtyard for SMDs)
        or on the substrate (for integrated structures).
    tolerance:
        Achieved relative tolerance.
    unit_cost:
        Piece-part cost for SMDs; zero for integrated structures (their
        cost is carried by the substrate cost per area).
    needs_assembly:
        Whether mounting the part requires an SMD assembly step.
    detail:
        Technology-specific description (geometry, material, trims).
    """

    requirement: PassiveRequirement
    mounting: MountingStyle
    technology: str
    area_mm2: float
    tolerance: float
    unit_cost: float = 0.0
    needs_assembly: bool = True
    detail: str = ""

    def __post_init__(self) -> None:
        if self.area_mm2 <= 0:
            raise ComponentError(
                f"realization area must be positive, got {self.area_mm2}"
            )
        if self.unit_cost < 0:
            raise ComponentError(
                f"unit cost cannot be negative, got {self.unit_cost}"
            )

    @property
    def meets_tolerance(self) -> bool:
        """True if the achieved tolerance satisfies the requirement."""
        return self.tolerance <= self.requirement.tolerance

    def describe(self) -> str:
        """One-line human-readable summary."""
        req = self.requirement
        label = req.name or req.kind.value
        return (
            f"{label}: {self.technology} ({self.mounting.value}), "
            f"{self.area_mm2:.3g} mm^2, tol {self.tolerance:.1%}"
        )


@dataclass
class BomLine:
    """One line of a bill of materials: a requirement with a quantity."""

    requirement: PassiveRequirement
    quantity: int = 1
    note: str = ""

    def __post_init__(self) -> None:
        if self.quantity < 1:
            raise ComponentError(
                f"BoM quantity must be >= 1, got {self.quantity}"
            )


@dataclass
class BillOfMaterials:
    """A collection of passive requirements with quantities.

    Provides the aggregate views the paper reports: total passive count,
    counts per kind and per role.
    """

    lines: list[BomLine] = field(default_factory=list)
    name: str = ""

    def add(
        self,
        requirement: PassiveRequirement,
        quantity: int = 1,
        note: str = "",
    ) -> None:
        """Append a requirement with a quantity."""
        self.lines.append(BomLine(requirement, quantity, note))

    @property
    def total_count(self) -> int:
        """Total number of passive component instances."""
        return sum(line.quantity for line in self.lines)

    def count_by_kind(self) -> dict[PassiveKind, int]:
        """Instance counts keyed by :class:`PassiveKind`."""
        counts: dict[PassiveKind, int] = {}
        for line in self.lines:
            kind = line.requirement.kind
            counts[kind] = counts.get(kind, 0) + line.quantity
        return counts

    def count_by_role(self) -> dict[PassiveRole, int]:
        """Instance counts keyed by :class:`PassiveRole`."""
        counts: dict[PassiveRole, int] = {}
        for line in self.lines:
            role = line.requirement.role
            counts[role] = counts.get(role, 0) + line.quantity
        return counts

    def requirements(self) -> list[PassiveRequirement]:
        """Flatten to one requirement per physical instance."""
        flat: list[PassiveRequirement] = []
        for line in self.lines:
            flat.extend([line.requirement] * line.quantity)
        return flat

    def __iter__(self):
        return iter(self.lines)

    def __len__(self) -> int:
        return len(self.lines)
