"""Filter-block component models.

The GPS front end needs four filter functions (Fig. 2): the 1.575 GHz RF
image-reject filter, two 175 MHz IF bandpass filters and a PLL loop filter.
Each can be bought as a discrete SMD block (27.5 mm^2, Table 1) or built
as a lumped-element structure from integrated R/L/C (12 mm^2 for a 3-stage
design, Table 1).

This module describes filter blocks *as components* (area, technology,
element inventory); their electrical behaviour is synthesised and analysed
by :mod:`repro.circuits`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ComponentError
from .component import (
    MountingStyle,
    PassiveKind,
    PassiveRealization,
    PassiveRequirement,
    PassiveRole,
)
from .smd import SMD_FILTER_AREA_MM2
from .thin_film import INTEGRATED_FILTER_AREA_MM2, ThinFilmProcess, SUMMIT_PROCESS


class FilterFamily(enum.Enum):
    """Approximation family of a filter design."""

    #: Cauer / elliptic: equiripple in both bands, transmission zeros in
    #: the stopband.  The paper's LNA output (image-reject) filter.
    CAUER = "cauer"
    #: Chebyshev type I: equiripple passband.  The paper's IF filters are
    #: "2-pole Tchebyscheff".
    CHEBYSHEV = "chebyshev"
    #: Butterworth, provided for completeness / ablations.
    BUTTERWORTH = "butterworth"


@dataclass(frozen=True)
class FilterSpec:
    """Electrical specification of one bandpass filter function.

    Attributes
    ----------
    name:
        Filter function name, e.g. ``"RF image reject"``.
    family:
        Approximation family.
    order:
        Number of resonator poles (lowpass-prototype order).
    center_hz:
        Passband centre frequency.
    bandwidth_hz:
        Passband (ripple) bandwidth.
    max_insertion_loss_db:
        Specification limit on mid-band insertion loss — the quantity the
        paper scores performance against.
    ripple_db:
        Passband ripple for Chebyshev/Cauer designs.
    stop_attenuation_db / stop_offset_hz:
        Required stopband rejection at ``center +/- stop_offset``
        (the image frequency for the RF filter).
    system_impedance_ohm:
        Source/load termination impedance.
    """

    name: str
    family: FilterFamily
    order: int
    center_hz: float
    bandwidth_hz: float
    max_insertion_loss_db: float
    ripple_db: float = 0.5
    stop_attenuation_db: Optional[float] = None
    stop_offset_hz: Optional[float] = None
    system_impedance_ohm: float = 50.0

    def __post_init__(self) -> None:
        if self.order < 1:
            raise ComponentError(f"filter order must be >= 1, got {self.order}")
        if self.center_hz <= 0 or self.bandwidth_hz <= 0:
            raise ComponentError(
                "centre frequency and bandwidth must be positive"
            )
        if self.bandwidth_hz >= 2.0 * self.center_hz:
            raise ComponentError(
                "bandwidth must be narrower than twice the centre frequency"
            )
        if self.max_insertion_loss_db <= 0:
            raise ComponentError(
                "max insertion loss must be positive (dB)"
            )
        if (self.stop_attenuation_db is None) != (self.stop_offset_hz is None):
            raise ComponentError(
                "stopband attenuation and offset must be given together"
            )

    @property
    def fractional_bandwidth(self) -> float:
        """Bandwidth relative to the centre frequency."""
        return self.bandwidth_hz / self.center_hz

    def requirement(self, role: PassiveRole = PassiveRole.FILTERING
                    ) -> PassiveRequirement:
        """Wrap this spec as a filter-kind passive requirement."""
        return PassiveRequirement(
            kind=PassiveKind.FILTER,
            value=0.0,  # filter blocks carry no scalar component value
            tolerance=1.0,
            role=role,
            name=self.name,
        )


@dataclass(frozen=True)
class FilterBlock:
    """A filter function together with its physical realization choice."""

    spec: FilterSpec
    realization: PassiveRealization
    #: Number of lumped stages when realised as an integrated structure.
    stages: int = 3


def realize_smd_filter(
    spec: FilterSpec, unit_cost: float = 1.50
) -> PassiveRealization:
    """Realise a filter spec as a discrete SMD filter block (Table 1)."""
    return PassiveRealization(
        requirement=spec.requirement(),
        mounting=MountingStyle.SURFACE_MOUNT,
        technology="SMD filter block",
        area_mm2=SMD_FILTER_AREA_MM2,
        tolerance=0.02,
        unit_cost=unit_cost,
        needs_assembly=True,
        detail=f"discrete {spec.family.value} filter, order {spec.order}",
    )


def realize_integrated_filter(
    spec: FilterSpec,
    process: ThinFilmProcess = SUMMIT_PROCESS,
    stages: int = 3,
) -> PassiveRealization:
    """Realise a filter spec as an integrated lumped-element structure.

    The Table 1 budget (12 mm^2) is for a 3-stage design; other stage
    counts scale the resonator portion linearly while keeping a fixed
    interface overhead.
    """
    if stages < 1:
        raise ComponentError(f"stages must be >= 1, got {stages}")
    overhead = 3.0
    per_stage = (INTEGRATED_FILTER_AREA_MM2 - overhead) / 3.0
    area = overhead + per_stage * stages
    return PassiveRealization(
        requirement=spec.requirement(),
        mounting=MountingStyle.INTEGRATED,
        technology=process.name,
        area_mm2=area,
        tolerance=process.cap_tolerance,
        unit_cost=0.0,
        needs_assembly=False,
        detail=(
            f"integrated {spec.family.value} filter, order {spec.order}, "
            f"{stages} stage(s)"
        ),
    )


@dataclass
class FilterBank:
    """The ordered set of filter functions in a signal chain."""

    specs: list[FilterSpec] = field(default_factory=list)

    def add(self, spec: FilterSpec) -> None:
        """Append a filter function to the chain."""
        self.specs.append(spec)

    def by_name(self, name: str) -> FilterSpec:
        """Look up a filter spec by its name."""
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise ComponentError(f"no filter named {name!r} in bank")

    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)
