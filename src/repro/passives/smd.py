"""Surface-mount passive catalog and the Fig. 1 area data.

The paper's Fig. 1 (after Pohjonen & Kuisma [6]) shows that while SMD
bodies keep shrinking from 0805 down to 0402, the *footprint* — body plus
the land pattern and courtyard needed for mounting and soldering — barely
shrinks, because soldering clearances cannot scale with the body.  This
module encodes that catalog and exposes it both as data (for the Fig. 1
benchmark) and as a realization factory for the trade-off engine.

Table 1 of the paper uses two case sizes for the GPS build-ups:

* 0603 with a 3.75 mm^2 footprint,
* 0805 with a 4.5 mm^2 footprint.

Those two numbers are reproduced exactly by the catalog below; the other
case sizes follow the same body-plus-overhead structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ComponentError
from .component import (
    MountingStyle,
    PassiveKind,
    PassiveRealization,
    PassiveRequirement,
)


@dataclass(frozen=True)
class SmdCaseSize:
    """Geometry of one imperial SMD case size.

    Attributes
    ----------
    code:
        Imperial size code, e.g. ``"0603"``.
    body_length_mm / body_width_mm:
        Nominal body dimensions.
    footprint_area_mm2:
        Total board area consumed including land pattern and courtyard —
        the quantity Fig. 1 plots as "footprint area".
    """

    code: str
    body_length_mm: float
    body_width_mm: float
    footprint_area_mm2: float

    @property
    def body_area_mm2(self) -> float:
        """Pure component (body) area, the lower series in Fig. 1."""
        return self.body_length_mm * self.body_width_mm

    @property
    def mounting_overhead_mm2(self) -> float:
        """Footprint area minus body area: the soldering overhead."""
        return self.footprint_area_mm2 - self.body_area_mm2


#: Catalog ordered from largest to smallest, as on the Fig. 1 x-axis.
#: Body dimensions are the standard imperial sizes; footprint areas are
#: chosen to reproduce Table 1 exactly for 0805/0603 and to follow the
#: Fig. 1 trend (footprint overhead stays roughly constant ~2.2 mm^2)
#: for the smaller sizes.
CASE_SIZES: dict[str, SmdCaseSize] = {
    case.code: case
    for case in (
        SmdCaseSize("1206", 3.2, 1.6, 7.3),
        SmdCaseSize("0805", 2.0, 1.25, 4.5),
        SmdCaseSize("0603", 1.6, 0.8, 3.75),
        SmdCaseSize("0402", 1.0, 0.5, 2.7),
        SmdCaseSize("0201", 0.6, 0.3, 2.1),
    )
}

#: The x-axis order of Fig. 1 (largest to smallest of the plotted sizes).
FIG1_ORDER = ("0805", "0603", "0402", "0201")

#: Default piece-part tolerances by kind for standard SMD components.
DEFAULT_SMD_TOLERANCE = {
    PassiveKind.RESISTOR: 0.01,
    PassiveKind.CAPACITOR: 0.05,
    PassiveKind.INDUCTOR: 0.05,
    PassiveKind.FILTER: 0.02,
}

#: Default piece-part unit costs (currency units) by kind; generic jellybean
#: passives are cheap, discrete filter blocks are not.
DEFAULT_SMD_UNIT_COST = {
    PassiveKind.RESISTOR: 0.01,
    PassiveKind.CAPACITOR: 0.02,
    PassiveKind.INDUCTOR: 0.08,
    PassiveKind.FILTER: 1.50,
}

#: Footprint of a discrete SMD filter block (Table 1: "Filter SMD").
SMD_FILTER_AREA_MM2 = 27.5


def get_case(code: str) -> SmdCaseSize:
    """Look up a case size by imperial code.

    Raises
    ------
    ComponentError
        If the code is not in the catalog.
    """
    try:
        return CASE_SIZES[code]
    except KeyError:
        known = ", ".join(sorted(CASE_SIZES))
        raise ComponentError(
            f"unknown SMD case size {code!r}; known sizes: {known}"
        ) from None


def fig1_series() -> list[tuple[str, float, float]]:
    """Return the Fig. 1 data: ``(code, body_area, footprint_area)`` rows.

    Ordered as plotted in the paper (0805 -> 0201).  The benchmark for
    Fig. 1 prints exactly these rows.
    """
    rows = []
    for code in FIG1_ORDER:
        case = CASE_SIZES[code]
        rows.append((code, case.body_area_mm2, case.footprint_area_mm2))
    return rows


def realize_smd(
    requirement: PassiveRequirement,
    case_code: str = "0603",
    tolerance: float | None = None,
    unit_cost: float | None = None,
) -> PassiveRealization:
    """Realise a requirement as a surface-mount part.

    Parameters
    ----------
    requirement:
        The electrical requirement to satisfy.
    case_code:
        Imperial case size; defaults to 0603, the paper's workhorse size.
    tolerance:
        Achieved tolerance; defaults per component kind
        (:data:`DEFAULT_SMD_TOLERANCE`).
    unit_cost:
        Piece price; defaults per component kind
        (:data:`DEFAULT_SMD_UNIT_COST`).

    Filters are a special case: they use the Table 1 discrete-filter
    footprint (27.5 mm^2) instead of a chip case size.
    """
    if requirement.kind is PassiveKind.FILTER:
        area = SMD_FILTER_AREA_MM2
        technology = "SMD filter block"
    else:
        case = get_case(case_code)
        area = case.footprint_area_mm2
        technology = case_code
    if tolerance is None:
        tolerance = DEFAULT_SMD_TOLERANCE[requirement.kind]
    if unit_cost is None:
        unit_cost = DEFAULT_SMD_UNIT_COST[requirement.kind]
    return PassiveRealization(
        requirement=requirement,
        mounting=MountingStyle.SURFACE_MOUNT,
        technology=technology,
        area_mm2=area,
        tolerance=tolerance,
        unit_cost=unit_cost,
        needs_assembly=True,
        detail=f"SMD {technology}",
    )
