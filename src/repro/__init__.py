"""repro — reproduction of Scheffler & Troester, *Assessing the Cost
Effectiveness of Integrated Passives* (DATE 2000).

The library implements the paper's trade-off methodology for deciding
between surface-mount and integrated (thin-film) passives, together with
every substrate it depends on:

* :mod:`repro.core` — the five-step methodology, figure of merit and the
  passives-optimized technology selector;
* :mod:`repro.passives` — SMD catalog and thin-film component models;
* :mod:`repro.circuits` — RLC netlists, nodal AC analysis, filter
  synthesis and technology Q models (performance step);
* :mod:`repro.area` — Table 1 placement/sizing rules (size step);
* :mod:`repro.cost` — the MOE production-flow cost modeller with Monte
  Carlo and analytic evaluation (cost step, Eq. (1));
* :mod:`repro.gps` — the GPS front-end case study reproducing every
  table and figure of the paper's evaluation.

Quickstart::

    from repro.gps import run_gps_study, summary_rows
    result = run_gps_study()
    for row in summary_rows(result):
        print(row.name, row.area_percent, row.cost_percent,
              row.figure_of_merit)
"""

from . import area, circuits, core, cost, gps, passives, reporting, units
from .errors import (
    CalibrationError,
    CircuitError,
    ComponentError,
    CostModelError,
    FlowError,
    PlacementError,
    ReproError,
    SpecificationError,
    SynthesisError,
    TechnologyError,
    UnitError,
)

__version__ = "1.0.0"

__all__ = [
    "CalibrationError",
    "CircuitError",
    "ComponentError",
    "CostModelError",
    "FlowError",
    "PlacementError",
    "ReproError",
    "SpecificationError",
    "SynthesisError",
    "TechnologyError",
    "UnitError",
    "__version__",
    "area",
    "circuits",
    "core",
    "cost",
    "gps",
    "passives",
    "reporting",
    "units",
]
