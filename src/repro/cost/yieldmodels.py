"""Yield models for production steps and substrates.

Table 2 of the paper quotes yields three ways:

* per step ("Chip Assembly 0.15/93.3 %"),
* per operation with a count ("Wire Bond 0.01/99.99 %, # Bonds 212"),
* per substrate class ("Substrate Yield/cost per cm2: 90 %/2.25").

This module provides the corresponding abstractions plus the classical
area-based substrate yield laws (Poisson, Murphy, Seeds) used for
ablations — a large integrated-passives substrate yields worse than a
small one at the same defect density, an effect the flat Table 2 numbers
average away.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import CostModelError
from ..units import check_yield


@dataclass(frozen=True)
class StepYield:
    """A per-step yield: one Bernoulli fault opportunity per unit."""

    value: float

    def __post_init__(self) -> None:
        check_yield(self.value, "step yield")

    def effective(self, operations: int = 1) -> float:
        """Step-level yield is independent of the operation count."""
        del operations
        return self.value


@dataclass(frozen=True)
class PerOperationYield:
    """A per-operation yield compounded over the operation count.

    212 wire bonds at 99.99 % each give ``0.9999 ** 212 = 97.9 %`` for the
    step — the reason Table 2 lists "# Bonds" at all.
    """

    value: float

    def __post_init__(self) -> None:
        check_yield(self.value, "per-operation yield")

    def effective(self, operations: int = 1) -> float:
        """Compound yield over ``operations`` independent operations."""
        if operations < 0:
            raise CostModelError(
                f"operation count cannot be negative, got {operations}"
            )
        return self.value**operations


# ---------------------------------------------------------------------------
# Area-based substrate yield laws
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PoissonYield:
    """Poisson defect law: ``Y = exp(-A * D0)``.

    ``defect_density`` is in defects per cm^2.
    """

    defect_density_per_cm2: float

    def __post_init__(self) -> None:
        if self.defect_density_per_cm2 < 0:
            raise CostModelError(
                "defect density cannot be negative, got "
                f"{self.defect_density_per_cm2}"
            )

    def yield_for_area(self, area_cm2: float) -> float:
        """Yield of a substrate of ``area_cm2``."""
        if area_cm2 <= 0:
            raise CostModelError(f"area must be positive, got {area_cm2}")
        return math.exp(-area_cm2 * self.defect_density_per_cm2)

    @classmethod
    def from_reference(
        cls, reference_yield: float, reference_area_cm2: float
    ) -> "PoissonYield":
        """Derive the defect density from one (yield, area) observation.

        Table 2's "90 % substrate yield" becomes a defect density once an
        area is attached, letting small substrates (build-up 4) yield
        better than large ones (build-up 3).
        """
        check_yield(reference_yield, "reference yield")
        if reference_area_cm2 <= 0:
            raise CostModelError(
                f"reference area must be positive, got {reference_area_cm2}"
            )
        density = -math.log(reference_yield) / reference_area_cm2
        return cls(defect_density_per_cm2=density)


@dataclass(frozen=True)
class MurphyYield:
    """Murphy's yield integral approximation: ``Y = ((1-e^-AD)/(AD))^2``."""

    defect_density_per_cm2: float

    def __post_init__(self) -> None:
        if self.defect_density_per_cm2 < 0:
            raise CostModelError(
                "defect density cannot be negative, got "
                f"{self.defect_density_per_cm2}"
            )

    def yield_for_area(self, area_cm2: float) -> float:
        """Yield of a substrate of ``area_cm2``."""
        if area_cm2 <= 0:
            raise CostModelError(f"area must be positive, got {area_cm2}")
        ad = area_cm2 * self.defect_density_per_cm2
        if ad == 0:
            return 1.0
        return ((1.0 - math.exp(-ad)) / ad) ** 2


@dataclass(frozen=True)
class SeedsYield:
    """Seeds' yield law: ``Y = 1 / (1 + A * D0)``."""

    defect_density_per_cm2: float

    def __post_init__(self) -> None:
        if self.defect_density_per_cm2 < 0:
            raise CostModelError(
                "defect density cannot be negative, got "
                f"{self.defect_density_per_cm2}"
            )

    def yield_for_area(self, area_cm2: float) -> float:
        """Yield of a substrate of ``area_cm2``."""
        if area_cm2 <= 0:
            raise CostModelError(f"area must be positive, got {area_cm2}")
        return 1.0 / (1.0 + area_cm2 * self.defect_density_per_cm2)


def compound_yield(*yields: float) -> float:
    """Product of independent yields, each validated."""
    result = 1.0
    for value in yields:
        check_yield(value)
        result *= value
    return result


def defect_probability(yield_value: float) -> float:
    """Probability of at least one fault given a yield."""
    check_yield(yield_value)
    return 1.0 - yield_value
