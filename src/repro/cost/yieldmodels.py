"""Yield models for production steps and substrates.

Table 2 of the paper quotes yields three ways:

* per step ("Chip Assembly 0.15/93.3 %"),
* per operation with a count ("Wire Bond 0.01/99.99 %, # Bonds 212"),
* per substrate class ("Substrate Yield/cost per cm2: 90 %/2.25").

This module provides the corresponding abstractions plus the classical
area-based substrate yield laws (Poisson, Murphy, Seeds) used for
ablations — a large integrated-passives substrate yields worse than a
small one at the same defect density, an effect the flat Table 2 numbers
average away.

Every law broadcasts: ``yield_for_area`` / ``effective`` /
:func:`compound_yield` accept numpy arrays and return elementwise
results bit-identical to looping the scalar call over the same values.
To guarantee that, the scalar path routes through the *same* numpy
kernels (``np.exp`` may differ from ``math.exp`` by one ulp, so mixing
the two would break the equivalence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..errors import CostModelError
from ..units import check_yield

#: Scalar-or-array argument/return type of the broadcasting laws.
ArrayLike = Union[float, np.ndarray]


def _validated_areas(area_cm2: ArrayLike) -> tuple[np.ndarray, bool]:
    """Coerce an area argument to a float64 array, rejecting ``<= 0``.

    Returns ``(flat_array, is_scalar)``; callers compute elementwise and
    either return the reshaped array or, for scalar input, the single
    Python float — so scalars and arrays share one code path and hence
    identical IEEE-754 operations.
    """
    areas = np.asarray(area_cm2, dtype=np.float64)
    is_scalar = areas.ndim == 0
    flat = np.atleast_1d(areas)
    if flat.size and not np.all(flat > 0):
        bad = flat[~(flat > 0)][0]
        raise CostModelError(f"area must be positive, got {bad}")
    return flat if is_scalar else flat.reshape(areas.shape), is_scalar


@dataclass(frozen=True)
class StepYield:
    """A per-step yield: one Bernoulli fault opportunity per unit."""

    value: float

    def __post_init__(self) -> None:
        check_yield(self.value, "step yield")

    def effective(self, operations: ArrayLike = 1) -> ArrayLike:
        """Step-level yield is independent of the operation count.

        An array of operation counts broadcasts to an array of (equal)
        yields, so the step laws are interchangeable in batched code.
        """
        if isinstance(operations, np.ndarray):
            return np.full(operations.shape, self.value, dtype=np.float64)
        return self.value


@dataclass(frozen=True)
class PerOperationYield:
    """A per-operation yield compounded over the operation count.

    212 wire bonds at 99.99 % each give ``0.9999 ** 212 = 97.9 %`` for the
    step — the reason Table 2 lists "# Bonds" at all.
    """

    value: float

    def __post_init__(self) -> None:
        check_yield(self.value, "per-operation yield")

    def effective(self, operations: ArrayLike = 1) -> ArrayLike:
        """Compound yield over ``operations`` independent operations."""
        if isinstance(operations, np.ndarray):
            if operations.size and np.any(operations < 0):
                bad = operations[operations < 0][0]
                raise CostModelError(
                    f"operation count cannot be negative, got {bad}"
                )
            # np.power special-cases integer exponents (repeated
            # squaring) and can differ from Python's ``**`` by an ulp;
            # route every element through the scalar operator instead.
            flat = operations.reshape(-1).tolist()
            return np.asarray(
                [self.value**count for count in flat], dtype=np.float64
            ).reshape(operations.shape)
        if operations < 0:
            raise CostModelError(
                f"operation count cannot be negative, got {operations}"
            )
        return self.value**operations


# ---------------------------------------------------------------------------
# Area-based substrate yield laws
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PoissonYield:
    """Poisson defect law: ``Y = exp(-A * D0)``.

    ``defect_density`` is in defects per cm^2.
    """

    defect_density_per_cm2: float

    def __post_init__(self) -> None:
        if self.defect_density_per_cm2 < 0:
            raise CostModelError(
                "defect density cannot be negative, got "
                f"{self.defect_density_per_cm2}"
            )

    def yield_for_area(self, area_cm2: ArrayLike) -> ArrayLike:
        """Yield of substrates of ``area_cm2`` (scalar or array)."""
        areas, is_scalar = _validated_areas(area_cm2)
        result = np.exp(-areas * self.defect_density_per_cm2)
        return float(result[0]) if is_scalar else result

    @classmethod
    def from_reference(
        cls, reference_yield: float, reference_area_cm2: float
    ) -> "PoissonYield":
        """Derive the defect density from one (yield, area) observation.

        Table 2's "90 % substrate yield" becomes a defect density once an
        area is attached, letting small substrates (build-up 4) yield
        better than large ones (build-up 3).
        """
        check_yield(reference_yield, "reference yield")
        if reference_area_cm2 <= 0:
            raise CostModelError(
                f"reference area must be positive, got {reference_area_cm2}"
            )
        density = -float(np.log(reference_yield)) / reference_area_cm2
        return cls(defect_density_per_cm2=density)


@dataclass(frozen=True)
class MurphyYield:
    """Murphy's yield integral approximation: ``Y = ((1-e^-AD)/(AD))^2``."""

    defect_density_per_cm2: float

    def __post_init__(self) -> None:
        if self.defect_density_per_cm2 < 0:
            raise CostModelError(
                "defect density cannot be negative, got "
                f"{self.defect_density_per_cm2}"
            )

    def yield_for_area(self, area_cm2: ArrayLike) -> ArrayLike:
        """Yield of substrates of ``area_cm2`` (scalar or array)."""
        areas, is_scalar = _validated_areas(area_cm2)
        ad = np.atleast_1d(areas * self.defect_density_per_cm2)
        result = np.ones_like(ad)
        defective = ad != 0
        result[defective] = (
            (1.0 - np.exp(-ad[defective])) / ad[defective]
        ) ** 2
        if is_scalar:
            return float(result[0])
        return result.reshape(areas.shape)

    @classmethod
    def from_reference(
        cls, reference_yield: float, reference_area_cm2: float
    ) -> "MurphyYield":
        """Derive the defect density from one (yield, area) observation.

        Murphy's law has no closed-form inverse; ``x = A * D0`` solves
        ``((1 - e^-x) / x)^2 = Y`` by bisection — the left side falls
        monotonically from 1 (``x -> 0``) toward 0, so the root is
        unique and bracketing is trivial.
        """
        check_yield(reference_yield, "reference yield")
        if reference_area_cm2 <= 0:
            raise CostModelError(
                f"reference area must be positive, got {reference_area_cm2}"
            )
        if reference_yield == 1.0:
            return cls(defect_density_per_cm2=0.0)

        def murphy(x: float) -> float:
            return ((1.0 - float(np.exp(-x))) / x) ** 2

        lower = 0.0
        upper = 1.0
        while murphy(upper) > reference_yield:
            upper *= 2.0
        for _ in range(200):
            mid = 0.5 * (lower + upper)
            if mid in (lower, upper):
                break
            if murphy(mid) > reference_yield:
                lower = mid
            else:
                upper = mid
        root = 0.5 * (lower + upper)
        return cls(defect_density_per_cm2=root / reference_area_cm2)


@dataclass(frozen=True)
class SeedsYield:
    """Seeds' yield law: ``Y = 1 / (1 + A * D0)``."""

    defect_density_per_cm2: float

    def __post_init__(self) -> None:
        if self.defect_density_per_cm2 < 0:
            raise CostModelError(
                "defect density cannot be negative, got "
                f"{self.defect_density_per_cm2}"
            )

    def yield_for_area(self, area_cm2: ArrayLike) -> ArrayLike:
        """Yield of substrates of ``area_cm2`` (scalar or array)."""
        areas, is_scalar = _validated_areas(area_cm2)
        result = 1.0 / (1.0 + areas * self.defect_density_per_cm2)
        return float(result[0]) if is_scalar else result

    @classmethod
    def from_reference(
        cls, reference_yield: float, reference_area_cm2: float
    ) -> "SeedsYield":
        """Derive the defect density from one (yield, area) observation.

        Seeds' law inverts in closed form: ``D0 = (1/Y - 1) / A``.
        """
        check_yield(reference_yield, "reference yield")
        if reference_area_cm2 <= 0:
            raise CostModelError(
                f"reference area must be positive, got {reference_area_cm2}"
            )
        density = (1.0 / reference_yield - 1.0) / reference_area_cm2
        return cls(defect_density_per_cm2=density)


def compound_yield(*yields: ArrayLike) -> ArrayLike:
    """Product of independent yields, each validated.

    Scalars and arrays mix freely; arrays broadcast elementwise, so the
    result is bit-identical to compounding each lane separately.
    """
    result: ArrayLike = 1.0
    for value in yields:
        check_yield(value)
        result = result * value
    return result


def defect_probability(yield_value: ArrayLike) -> ArrayLike:
    """Probability of at least one fault given a yield."""
    check_yield(yield_value)
    return 1.0 - yield_value
