"""Cost-driver sensitivity analysis.

The methodology's cost step answers "what does this build-up cost?";
this module answers the follow-up every program manager asks: *which
input moves the answer most?*  It perturbs one production-flow input at
a time (a step's cost, a yield, a test's coverage) and reports the
elasticity of the final cost per shipped unit:

    elasticity = (dF / F) / (dx / x)

computed by central finite differences over the analytic evaluator.
Applied to the GPS build-ups it quantifies the paper's §4.3 narrative —
e.g. that build-up 3's final cost is dominated by the substrate yield.

:func:`rank_cost_drivers` evaluates all ``K`` knobs with **one batched
flow walk per finite-difference side**
(:func:`~repro.cost.moe.analytic.final_costs_for_variants` with
``(K,)``-shaped state) instead of ``2 * K`` scalar re-evaluations;
:func:`rank_cost_drivers_pointwise` keeps the scalar loop as the
bit-identical reference, mirroring the ``sweep_pointwise`` /
``pareto_front_pointwise`` discipline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from ..errors import CostModelError
from .moe.analytic import evaluate, final_costs_for_variants
from .moe.flow import ProductionFlow
from .moe.nodes import AttachStep, CarrierStep, ProcessStep, Step, TestStep


class Knob(enum.Enum):
    """Which scalar of a step is perturbed."""

    COST = "cost"
    YIELD = "yield"
    COVERAGE = "coverage"


@dataclass(frozen=True)
class Sensitivity:
    """Elasticity of the final cost with respect to one input."""

    node_id: str
    step_name: str
    knob: Knob
    base_value: float
    elasticity: float

    @property
    def label(self) -> str:
        """Human-readable ``"Substrate yield"`` style label."""
        return f"{self.step_name} {self.knob.value}"


def _with_knob(step: Step, knob: Knob, value: float) -> Step:
    """Copy a step with one scalar replaced."""
    if isinstance(step, CarrierStep):
        if knob is Knob.COST:
            return replace(step, unit_cost=value)
        if knob is Knob.YIELD:
            return replace(step, carrier_yield=value)
    elif isinstance(step, AttachStep):
        if knob is Knob.COST:
            return replace(step, component_cost=value)
        if knob is Knob.YIELD:
            return replace(step, attach_yield=value)
    elif isinstance(step, TestStep):
        if knob is Knob.COST:
            return replace(step, test_cost=value)
        if knob is Knob.COVERAGE:
            return replace(step, coverage=value)
    elif isinstance(step, ProcessStep):
        if knob is Knob.COST:
            return replace(step, unit_cost=value)
        if knob is Knob.YIELD:
            return replace(step, process_yield=value)
    raise CostModelError(
        f"step {step.name!r} has no knob {knob.value!r}"
    )


def _read_knob(step: Step, knob: Knob) -> Optional[float]:
    """Current value of a step's knob, or None if not applicable."""
    if isinstance(step, CarrierStep):
        return {
            Knob.COST: step.unit_cost,
            Knob.YIELD: step.carrier_yield,
        }.get(knob)
    if isinstance(step, AttachStep):
        return {
            Knob.COST: step.component_cost,
            Knob.YIELD: step.attach_yield,
        }.get(knob)
    if isinstance(step, TestStep):
        return {
            Knob.COST: step.test_cost,
            Knob.COVERAGE: step.coverage,
        }.get(knob)
    if isinstance(step, ProcessStep):
        return {
            Knob.COST: step.unit_cost,
            Knob.YIELD: step.process_yield,
        }.get(knob)
    return None


def _evaluate_with(
    flow: ProductionFlow, index: int, step: Step
) -> float:
    modified = ProductionFlow(name=flow.name, nre=flow.nre)
    modified.steps = list(flow.steps)
    modified.steps[index] = step
    return evaluate(modified).final_cost_per_shipped


def sensitivity_of(
    flow: ProductionFlow,
    node_id: str,
    knob: Knob,
    relative_step: float = 0.01,
) -> Sensitivity:
    """Elasticity of the final cost w.r.t. one step's knob.

    Yields and coverages are perturbed toward the interior of ``(0, 1]``
    when a symmetric step would leave the domain.
    """
    if not (0.0 < relative_step < 0.5):
        raise CostModelError(
            f"relative step must lie in (0, 0.5), got {relative_step}"
        )
    index = next(
        (i for i, s in enumerate(flow.steps) if s.node_id == node_id),
        None,
    )
    if index is None:
        raise CostModelError(f"no step with node id {node_id!r}")
    step = flow.steps[index]
    base = _read_knob(step, knob)
    if base is None:
        raise CostModelError(
            f"step {step.name!r} has no knob {knob.value!r}"
        )
    if base == 0.0:
        raise CostModelError(
            f"cannot compute elasticity at zero base value for "
            f"{step.name!r} {knob.value}"
        )
    upper, lower = _perturbation_bounds(base, knob, relative_step)
    f_upper = _evaluate_with(flow, index, _with_knob(step, knob, upper))
    f_lower = _evaluate_with(flow, index, _with_knob(step, knob, lower))
    f_base = evaluate(flow).final_cost_per_shipped
    derivative = (f_upper - f_lower) / (upper - lower)
    return Sensitivity(
        node_id=node_id,
        step_name=step.name,
        knob=knob,
        base_value=base,
        elasticity=derivative * base / f_base,
    )


def _perturbation_bounds(
    base: float, knob: Knob, relative_step: float
) -> tuple[float, float]:
    """The central-difference evaluation points around one knob value.

    Yields and coverages are perturbed toward the interior of ``(0, 1]``
    when a symmetric step would leave the domain.
    """
    delta = base * relative_step
    upper = base + delta
    lower = base - delta
    if knob in (Knob.YIELD, Knob.COVERAGE) and upper > 1.0:
        upper = 1.0
        lower = 1.0 - 2.0 * delta
    return upper, lower


def _applicable_knobs(flow: ProductionFlow) -> list[tuple[int, Step, Knob, float]]:
    """Every (step index, step, knob, base value) worth perturbing.

    Knobs at trivial values (zero cost, perfect yield) are skipped —
    their elasticity is zero or undefined.
    """
    knobs: list[tuple[int, Step, Knob, float]] = []
    for index, step in enumerate(flow.steps):
        for knob in Knob:
            base = _read_knob(step, knob)
            if base is None or base == 0.0:
                continue
            if knob in (Knob.YIELD, Knob.COVERAGE) and base == 1.0:
                continue
            knobs.append((index, step, knob, base))
    return knobs


def rank_cost_drivers(
    flow: ProductionFlow, relative_step: float = 0.01
) -> list[Sensitivity]:
    """All applicable (step, knob) elasticities, largest magnitude first.

    Knobs at trivial values (zero cost, perfect yield) are skipped —
    their elasticity is zero or undefined.  All ``K`` knobs are
    evaluated with one batched flow walk per finite-difference side
    (``(K,)``-shaped state in
    :func:`~repro.cost.moe.analytic.final_costs_for_variants`) instead
    of ``2 * K`` scalar evaluations; the result is bit-identical to
    :func:`rank_cost_drivers_pointwise`.
    """
    if not (0.0 < relative_step < 0.5):
        raise CostModelError(
            f"relative step must lie in (0, 0.5), got {relative_step}"
        )
    knobs = _applicable_knobs(flow)
    if not knobs:
        return []
    bounds = [
        _perturbation_bounds(base, knob, relative_step)
        for _, _, knob, base in knobs
    ]
    f_upper = final_costs_for_variants(
        flow,
        [
            (index, _with_knob(step, knob, upper))
            for (index, step, knob, _), (upper, _) in zip(knobs, bounds)
        ],
    )
    f_lower = final_costs_for_variants(
        flow,
        [
            (index, _with_knob(step, knob, lower))
            for (index, step, knob, _), (_, lower) in zip(knobs, bounds)
        ],
    )
    f_base = evaluate(flow).final_cost_per_shipped
    results: list[Sensitivity] = []
    for lane, ((_, step, knob, base), (upper, lower)) in enumerate(
        zip(knobs, bounds)
    ):
        derivative = (float(f_upper[lane]) - float(f_lower[lane])) / (
            upper - lower
        )
        results.append(
            Sensitivity(
                node_id=step.node_id,
                step_name=step.name,
                knob=knob,
                base_value=base,
                elasticity=derivative * base / f_base,
            )
        )
    results.sort(key=lambda s: abs(s.elasticity), reverse=True)
    return results


def rank_cost_drivers_pointwise(
    flow: ProductionFlow, relative_step: float = 0.01
) -> list[Sensitivity]:
    """Scalar reference for :func:`rank_cost_drivers`.

    One full flow re-evaluation per knob per finite-difference side,
    exactly as the batched ranking performs them elementwise — the test
    suite asserts the two agree bit-for-bit.
    """
    results = [
        sensitivity_of(flow, step.node_id, knob, relative_step)
        for _, step, knob, _ in _applicable_knobs(flow)
    ]
    results.sort(key=lambda s: abs(s.elasticity), reverse=True)
    return results
