"""Fluent construction and rendering of production flows.

:class:`FlowBuilder` assembles a :class:`~repro.cost.moe.flow.ProductionFlow`
with automatically numbered Fig. 4 style node ids; :func:`render_flow`
draws the resulting graph as ASCII art in the spirit of the paper's
Fig. 4 (components feeding assembly steps, the test's pass/fail branch,
the scrap and shipped collectors).
"""

from __future__ import annotations

from ...errors import FlowError
from .flow import ProductionFlow
from .nodes import (
    AttachStep,
    CarrierStep,
    CostTag,
    InspectStep,
    ProcessStep,
    Step,
    TestStep,
)


class FlowBuilder:
    """Builds a production flow step by step.

    Node ids follow the paper's ``ID<n>`` convention and are assigned in
    insertion order unless given explicitly.
    """

    def __init__(self, name: str, nre: float = 0.0):
        self._flow = ProductionFlow(name=name, nre=nre)
        self._counter = 0

    def _next_id(self, node_id: str | None) -> str:
        if node_id is not None:
            return node_id
        node_id = f"ID{self._counter}"
        self._counter += 1
        return node_id

    def _register(self, step: Step) -> "FlowBuilder":
        self._flow.add(step)
        self._counter = max(
            self._counter,
            1 + _numeric_suffix(step.node_id, default=self._counter - 1),
        )
        return self

    def carrier(
        self,
        name: str,
        cost: float,
        yield_: float,
        node_id: str | None = None,
    ) -> "FlowBuilder":
        """Add the substrate/PCB carrier."""
        return self._register(
            CarrierStep(self._next_id(node_id), name, cost, yield_)
        )

    def process(
        self,
        name: str,
        cost: float,
        yield_: float = 1.0,
        tag: CostTag = CostTag.PROCESS,
        node_id: str | None = None,
    ) -> "FlowBuilder":
        """Add a generic process step (rerouting, paste impression...)."""
        return self._register(
            ProcessStep(self._next_id(node_id), name, cost, yield_, tag)
        )

    def packaging(
        self,
        name: str,
        cost: float,
        yield_: float,
        node_id: str | None = None,
    ) -> "FlowBuilder":
        """Add a packaging step (mount on laminate)."""
        return self._register(
            ProcessStep(
                self._next_id(node_id),
                name,
                cost,
                yield_,
                CostTag.PACKAGING,
            )
        )

    def attach(
        self,
        name: str,
        quantity: int,
        component_cost: float,
        component_yield: float,
        attach_cost: float,
        attach_yield: float,
        per_operation: bool = True,
        component_tag: CostTag = CostTag.CHIP,
        node_id: str | None = None,
    ) -> "FlowBuilder":
        """Add a component-attach (assembly) step."""
        return self._register(
            AttachStep(
                self._next_id(node_id),
                name,
                quantity=quantity,
                component_cost=component_cost,
                component_yield=component_yield,
                attach_cost=attach_cost,
                attach_yield=attach_yield,
                per_operation=per_operation,
                component_tag=component_tag,
            )
        )

    def test(
        self,
        name: str,
        cost: float,
        coverage: float,
        node_id: str | None = None,
    ) -> "FlowBuilder":
        """Add a test step with finite fault coverage."""
        return self._register(
            TestStep(self._next_id(node_id), name, cost, coverage)
        )

    def inspect(
        self,
        name: str = "Outgoing inspection",
        node_id: str | None = None,
    ) -> "FlowBuilder":
        """Add a zero-cost perfect screen (catches packaging faults)."""
        return self._register(
            InspectStep(self._next_id(node_id), name, 0.0, 1.0)
        )

    def build(self) -> ProductionFlow:
        """Validate and return the flow."""
        self._flow.validate()
        return self._flow


def _numeric_suffix(node_id: str, default: int) -> int:
    """Extract ``7`` from ``"ID7"``; fall back for free-form ids."""
    if node_id.startswith("ID") and node_id[2:].isdigit():
        return int(node_id[2:])
    return default


def render_flow(flow: ProductionFlow) -> str:
    """Render a flow as Fig. 4 style ASCII art.

    One line per step, annotated with its MOE node class, cost and yield;
    tests show their pass/fail branch to SCRAP; the last line is the
    shipped-modules collector.
    """
    lines = [f"Production flow: {flow.name}", "=" * (18 + len(flow.name))]
    for step in flow.steps:
        if isinstance(step, CarrierStep):
            kind = "Carrier"
            detail = f"cost={step.cost:g} yield={step.yield_:.4%}"
        elif isinstance(step, InspectStep):
            kind = "Test"
            detail = f"coverage={step.coverage:.1%}  fail -> SCRAP"
        elif isinstance(step, TestStep):
            kind = "Test"
            detail = (
                f"cost={step.cost:g} coverage={step.coverage:.1%}  "
                "fail -> SCRAP"
            )
        elif isinstance(step, AttachStep):
            kind = "Assembly"
            detail = (
                f"{step.quantity}x component "
                f"(cost={step.component_cost:g}, "
                f"yield={step.component_yield:.4%}) "
                f"attach(cost={step.attach_cost:g}, "
                f"yield={step.attach_yield:.4%})"
            )
        else:
            kind = "Process"
            detail = f"cost={step.cost:g} yield={step.yield_:.4%}"
        lines.append(f"  [{step.node_id:>4}] {kind:<9} {step.name}")
        lines.append(f"         {detail}")
        lines.append("         |")
    lines.append(f"  [ship] Collector Modules to be shipped")
    if flow.nre:
        lines.append(f"  NRE amortised over shipped units: {flow.nre:g}")
    return "\n".join(lines)


def flow_node_summary(flow: ProductionFlow) -> list[tuple[str, str, str]]:
    """Tabular ``(node_id, node_class, name)`` rows for the Fig. 4 bench."""
    if not flow.steps:
        raise FlowError(f"flow {flow.name!r} has no steps")
    rows = []
    for step in flow.steps:
        if isinstance(step, CarrierStep):
            kind = "Carrier"
        elif isinstance(step, TestStep):
            kind = "Test"
        elif isinstance(step, AttachStep):
            kind = "Assembly"
        else:
            kind = "Process"
        rows.append((step.node_id, kind, step.name))
    rows.append(("ship", "Collector", "Modules to be shipped"))
    return rows
