"""Cost evaluation results and the Fig. 5 breakdown.

Both evaluators (analytic expectation and Monte Carlo) produce a
:class:`CostReport`.  Its headline number is Eq. (1) of the paper::

    Final Cost per Shipped Unit =
        (sum of direct cost + sum of scrap cost over all steps + NRE)
        / number of shipped units

and its breakdown matches the Fig. 5 stacked bars: direct cost (with the
"thereof: chip cost" portion) plus yield loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...errors import CostModelError
from .nodes import CostTag


@dataclass(frozen=True)
class StepReport:
    """Per-step accounting."""

    node_id: str
    name: str
    unit_cost: float
    units_processed: float
    scrap_units: float
    scrap_cost: float


@dataclass(frozen=True)
class CostReport:
    """Result of evaluating one production flow.

    All "per shipped unit" figures follow Eq. (1).  ``escape_fraction``
    is the fraction of shipped units that still carry an undetected
    fault (test coverage < 100 %).

    Attributes
    ----------
    flow_name:
        Which flow was evaluated.
    started_units / shipped_units / scrapped_units:
        Unit flow accounting (fractions for the analytic evaluator,
        counts for Monte Carlo).
    direct_cost_per_unit:
        Build cost of one fault-free unit (materials + processing + test).
    chip_cost_per_unit:
        The chip-material portion of the direct cost ("thereof: chip
        cost" in Fig. 5).
    yield_loss_per_shipped:
        Scrap cost amortised over shipped units — the Fig. 5 top segment.
    nre_per_shipped:
        Amortised non-recurring engineering cost.
    final_cost_per_shipped:
        Eq. (1): direct + yield loss + NRE share.
    escape_fraction:
        Shipped-but-faulty fraction.
    cost_by_tag:
        Direct cost split by :class:`CostTag`.
    steps:
        Per-step detail.
    """

    flow_name: str
    started_units: float
    shipped_units: float
    scrapped_units: float
    direct_cost_per_unit: float
    chip_cost_per_unit: float
    yield_loss_per_shipped: float
    nre_per_shipped: float
    final_cost_per_shipped: float
    escape_fraction: float
    cost_by_tag: dict[CostTag, float] = field(default_factory=dict)
    steps: tuple[StepReport, ...] = ()

    @property
    def shipped_fraction(self) -> float:
        """Shipped units over started units."""
        if self.started_units == 0:
            return 0.0
        return self.shipped_units / self.started_units

    @property
    def non_chip_direct_cost(self) -> float:
        """Direct cost excluding the chip material portion."""
        return self.direct_cost_per_unit - self.chip_cost_per_unit

    def relative_to(self, reference: "CostReport") -> float:
        """Final-cost ratio against a reference flow (Fig. 5's x-axis)."""
        if reference.final_cost_per_shipped <= 0:
            raise CostModelError(
                "reference flow has non-positive final cost"
            )
        return self.final_cost_per_shipped / reference.final_cost_per_shipped


def fig5_row(report: CostReport, reference: CostReport) -> dict[str, float]:
    """One Fig. 5 bar: percentages of the reference final cost.

    Keys mirror the stacked-bar legend: ``final``, ``direct``,
    ``chip`` ("thereof"), and ``yield_loss``.
    """
    base = reference.final_cost_per_shipped
    if base <= 0:
        raise CostModelError("reference flow has non-positive final cost")
    return {
        "final": 100.0 * report.final_cost_per_shipped / base,
        "direct": 100.0 * report.direct_cost_per_unit / base,
        "chip": 100.0 * report.chip_cost_per_unit / base,
        "yield_loss": 100.0 * report.yield_loss_per_shipped / base,
    }
