"""Monte Carlo evaluation of a production flow.

This mirrors the original MOE tool: *"MOE maps the figures from Tab. 2 to
a production model and routes the single components through this virtual
production.  Yield figures are translated into faults using Monte Carlo
simulation.  The routed components are inspected at the test steps and
routed to the respective branch."*

Units are simulated individually (vectorised over the batch with numpy);
faults are Bernoulli draws per step, tests detect with their coverage,
detected units route to scrap and lose their accumulated cost.  The
analytic evaluator computes the same expectations in closed form; the
test suite checks agreement.
"""

from __future__ import annotations

import numpy as np

from ...errors import FlowError
from .flow import ProductionFlow
from .nodes import AttachStep, CostTag, TestStep
from .report import CostReport, StepReport


def simulate(
    flow: ProductionFlow,
    units: int = 10_000,
    seed: int = 0,
) -> CostReport:
    """Run a Monte Carlo production simulation.

    Parameters
    ----------
    flow:
        The production flow to simulate.
    units:
        Batch size (the paper's Fig. 4 run shows a batch with 208 units
        scrapped).
    seed:
        RNG seed; simulations are reproducible.
    """
    flow.validate()
    if units < 1:
        raise FlowError(f"need at least 1 unit, got {units}")
    rng = np.random.default_rng(seed)

    alive = np.ones(units, dtype=bool)
    faulty = np.zeros(units, dtype=bool)
    accumulated = np.zeros(units, dtype=float)
    scrap_cost_total = 0.0
    direct = 0.0
    cost_by_tag: dict[CostTag, float] = {}
    step_reports: list[StepReport] = []

    def tag_cost(amount: float, tag: CostTag) -> None:
        cost_by_tag[tag] = cost_by_tag.get(tag, 0.0) + amount

    for step in flow.steps:
        processed = int(alive.sum())
        scrap_units = 0
        scrap_cost = 0.0
        if isinstance(step, TestStep):
            accumulated[alive] += step.cost
            direct += step.cost
            tag_cost(step.cost, step.cost_tag)
            candidates = alive & faulty
            detected = candidates & (
                rng.random(units) < step.coverage
            )
            if step.rework is not None:
                policy = step.rework
                needs_repair = detected.copy()
                for _ in range(policy.max_attempts):
                    if not needs_repair.any():
                        break
                    accumulated[needs_repair] += policy.attempt_cost
                    repaired = needs_repair & (
                        rng.random(units) < policy.success_probability
                    )
                    faulty &= ~repaired
                    needs_repair &= ~repaired
                detected = needs_repair  # unrepairable -> scrap
            scrap_units = int(detected.sum())
            scrap_cost = float(accumulated[detected].sum())
            scrap_cost_total += scrap_cost
            alive &= ~detected
        else:
            if isinstance(step, AttachStep):
                direct += step.cost
                tag_cost(step.material_cost, step.component_tag)
                tag_cost(step.operation_cost, CostTag.ASSEMBLY)
            else:
                direct += step.cost
                tag_cost(step.cost, step.cost_tag)
            accumulated[alive] += step.cost
            new_faults = alive & (rng.random(units) > step.yield_)
            faulty |= new_faults
        step_reports.append(
            StepReport(
                node_id=step.node_id,
                name=step.name,
                unit_cost=step.cost,
                units_processed=processed,
                scrap_units=scrap_units,
                scrap_cost=scrap_cost,
            )
        )

    shipped = int(alive.sum())
    if shipped == 0:
        raise FlowError(
            f"flow {flow.name!r} shipped no units in this simulation; "
            "increase the batch size or check the yields"
        )
    # Eq. (1): total spend over shipped units.  ``accumulated`` holds
    # each unit's sunk cost (scrapped units keep theirs), so the sum is
    # the batch spend.
    total_spend = float(accumulated.sum())
    yield_loss = total_spend / shipped - direct
    nre_per_shipped = flow.nre / shipped
    final = direct + yield_loss + nre_per_shipped
    escapes = int((alive & faulty).sum())
    return CostReport(
        flow_name=flow.name,
        started_units=float(units),
        shipped_units=float(shipped),
        scrapped_units=float(units - shipped),
        direct_cost_per_unit=direct,
        chip_cost_per_unit=cost_by_tag.get(CostTag.CHIP, 0.0),
        yield_loss_per_shipped=yield_loss,
        nre_per_shipped=nre_per_shipped,
        final_cost_per_shipped=final,
        escape_fraction=escapes / shipped,
        cost_by_tag=cost_by_tag,
        steps=tuple(step_reports),
    )
