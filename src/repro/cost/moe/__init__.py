"""MOE — Modular Optimization Environment (reimplementation of ref [8]).

A production-flow cost modeller: typed steps (carrier, process, assembly,
test), latent-fault propagation, test-coverage scrap routing, and the
Eq. (1) cost roll-up, evaluated either analytically
(:func:`~repro.cost.moe.analytic.evaluate`) or by Monte Carlo
(:func:`~repro.cost.moe.simulate.simulate`).
"""

from .analytic import (
    CostReportBatch,
    evaluate,
    evaluate_batch,
    final_costs_for_variants,
)
from .builder import FlowBuilder, flow_node_summary, render_flow
from .flow import ProductionFlow
from .nodes import (
    AttachStep,
    CarrierStep,
    CostTag,
    InspectStep,
    ProcessStep,
    ReworkPolicy,
    Step,
    TestStep,
    UnitState,
)
from .report import CostReport, StepReport, fig5_row
from .simulate import simulate

__all__ = [
    "AttachStep",
    "CarrierStep",
    "CostReport",
    "CostReportBatch",
    "CostTag",
    "FlowBuilder",
    "InspectStep",
    "ProcessStep",
    "ProductionFlow",
    "ReworkPolicy",
    "Step",
    "StepReport",
    "TestStep",
    "UnitState",
    "evaluate",
    "evaluate_batch",
    "fig5_row",
    "final_costs_for_variants",
    "flow_node_summary",
    "render_flow",
    "simulate",
]
