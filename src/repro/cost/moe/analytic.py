"""Exact expectation evaluation of a production flow.

The Monte Carlo engine (:mod:`repro.cost.moe.simulate`) mirrors the MOE
tool's "translate yield figures into faults using Monte Carlo simulation";
this module computes the same quantities in closed form, which is faster,
deterministic, and a cross-check the test suite exploits (the two must
agree within sampling error).

State tracked while walking the flow, all per started unit:

* ``alive`` — fraction of units not yet scrapped;
* ``faulty`` — probability a *surviving* unit carries a latent fault;
* ``accumulated`` — cost sunk into each surviving unit so far
  (deterministic, since every step charges every processed unit);
* ``spend`` — expected total spend, ``sum(alive_at_step * step_cost)``.

At a test with coverage ``c``: the detected fraction ``faulty * c`` of
survivors is scrapped, losing ``accumulated`` each (test cost included —
the test was performed).
"""

from __future__ import annotations

from ...errors import FlowError
from .flow import ProductionFlow
from .nodes import AttachStep, CostTag, TestStep
from .report import CostReport, StepReport


def evaluate(flow: ProductionFlow, volume: float = 10_000.0) -> CostReport:
    """Evaluate a flow analytically.

    Parameters
    ----------
    flow:
        The production flow to evaluate.
    volume:
        Number of started units; only affects the absolute unit counts
        and the NRE amortisation (Eq. (1) divides NRE by shipped units).
    """
    flow.validate()
    if volume <= 0:
        raise FlowError(f"volume must be positive, got {volume}")

    alive = 1.0
    faulty = 0.0
    accumulated = 0.0
    spend = 0.0
    scrap_cost_total = 0.0
    cost_by_tag: dict[CostTag, float] = {}
    step_reports: list[StepReport] = []

    def charge(amount: float, tag: CostTag) -> None:
        nonlocal accumulated, spend
        accumulated += amount
        spend += alive * amount
        cost_by_tag[tag] = cost_by_tag.get(tag, 0.0) + amount

    for step in flow.steps:
        scrap_units = 0.0
        scrap_cost = 0.0
        processed = alive
        if isinstance(step, TestStep):
            charge(step.cost, step.cost_tag)
            detected = faulty * step.coverage
            if step.rework is None:
                lost = detected
                sunk_extra = 0.0
            else:
                policy = step.rework
                lost = detected * (1.0 - policy.recovery_fraction)
                # Expected rework spend over all detected units
                # (repaired ones and eventual scrap alike).
                spend += alive * detected * policy.expected_cost
                sunk_extra = policy.max_attempts * policy.attempt_cost
            scrap_units = alive * lost
            scrap_cost = scrap_units * (accumulated + sunk_extra)
            scrap_cost_total += scrap_cost
            alive *= 1.0 - lost
            if lost < 1.0:
                # Survivors: never-detected escapes stay faulty;
                # reworked units are repaired.
                faulty = faulty * (1.0 - step.coverage) / (1.0 - lost)
            else:
                faulty = 0.0
        elif isinstance(step, AttachStep):
            charge(step.material_cost, step.component_tag)
            charge(step.operation_cost, CostTag.ASSEMBLY)
            faulty = 1.0 - (1.0 - faulty) * step.yield_
        else:
            charge(step.cost, step.cost_tag)
            faulty = 1.0 - (1.0 - faulty) * step.yield_
        step_reports.append(
            StepReport(
                node_id=step.node_id,
                name=step.name,
                unit_cost=step.cost,
                units_processed=processed * volume,
                scrap_units=scrap_units * volume,
                scrap_cost=scrap_cost * volume,
            )
        )

    shipped = alive
    if shipped <= 0:
        raise FlowError(
            f"flow {flow.name!r} ships no units (everything scrapped)"
        )
    direct = accumulated
    chip_cost = cost_by_tag.get(CostTag.CHIP, 0.0)
    # Eq. (1): everything spent, over everything shipped.  Without
    # rework this reduces to direct + scrap/shipped; with rework it also
    # carries the repair spend.
    yield_loss = spend / shipped - direct
    nre_per_shipped = flow.nre / (shipped * volume)
    final = direct + yield_loss + nre_per_shipped
    return CostReport(
        flow_name=flow.name,
        started_units=volume,
        shipped_units=shipped * volume,
        scrapped_units=(1.0 - shipped) * volume,
        direct_cost_per_unit=direct,
        chip_cost_per_unit=chip_cost,
        yield_loss_per_shipped=yield_loss,
        nre_per_shipped=nre_per_shipped,
        final_cost_per_shipped=final,
        escape_fraction=faulty,
        cost_by_tag=cost_by_tag,
        steps=tuple(step_reports),
    )
