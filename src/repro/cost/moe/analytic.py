"""Exact expectation evaluation of a production flow.

The Monte Carlo engine (:mod:`repro.cost.moe.simulate`) mirrors the MOE
tool's "translate yield figures into faults using Monte Carlo simulation";
this module computes the same quantities in closed form, which is faster,
deterministic, and a cross-check the test suite exploits (the two must
agree within sampling error).

State tracked while walking the flow, all per started unit:

* ``alive`` — fraction of units not yet scrapped;
* ``faulty`` — probability a *surviving* unit carries a latent fault;
* ``accumulated`` — cost sunk into each surviving unit so far
  (deterministic, since every step charges every processed unit);
* ``spend`` — expected total spend, ``sum(alive_at_step * step_cost)``.

At a test with coverage ``c``: the detected fraction ``faulty * c`` of
survivors is scrapped, losing ``accumulated`` each (test cost included —
the test was performed).

Two batched fast paths live next to the scalar reference:

* :func:`evaluate_batch` — the key observation is that the whole
  recurrence above is *volume-independent*: volume enters Eq. (1) only
  through the absolute unit counts and the NRE amortisation.  One walk
  of the flow therefore serves every volume of a family at once,
  returning a columnar :class:`CostReportBatch` whose
  :meth:`~CostReportBatch.to_reports` bridge is bit-identical to
  looping :func:`evaluate` (float64 elementwise arithmetic performs the
  same IEEE-754 operations as Python floats).
* :func:`final_costs_for_variants` — evaluates ``K`` single-step
  variants of one flow with ``(K,)``-shaped state, one step loop for
  all of them; this is the kernel behind the batched sensitivity
  ranking (:mod:`repro.cost.sensitivity`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ...errors import FlowError
from .flow import ProductionFlow
from .nodes import AttachStep, CostTag, Step, TestStep
from .report import CostReport, StepReport


def evaluate(flow: ProductionFlow, volume: float = 10_000.0) -> CostReport:
    """Evaluate a flow analytically.

    Parameters
    ----------
    flow:
        The production flow to evaluate.
    volume:
        Number of started units; only affects the absolute unit counts
        and the NRE amortisation (Eq. (1) divides NRE by shipped units).
    """
    flow.validate()
    if volume <= 0:
        raise FlowError(f"volume must be positive, got {volume}")

    alive = 1.0
    faulty = 0.0
    accumulated = 0.0
    spend = 0.0
    scrap_cost_total = 0.0
    cost_by_tag: dict[CostTag, float] = {}
    step_reports: list[StepReport] = []

    def charge(amount: float, tag: CostTag) -> None:
        nonlocal accumulated, spend
        accumulated += amount
        spend += alive * amount
        cost_by_tag[tag] = cost_by_tag.get(tag, 0.0) + amount

    for step in flow.steps:
        scrap_units = 0.0
        scrap_cost = 0.0
        processed = alive
        if isinstance(step, TestStep):
            charge(step.cost, step.cost_tag)
            detected = faulty * step.coverage
            if step.rework is None:
                lost = detected
                sunk_extra = 0.0
            else:
                policy = step.rework
                lost = detected * (1.0 - policy.recovery_fraction)
                # Expected rework spend over all detected units
                # (repaired ones and eventual scrap alike).
                spend += alive * detected * policy.expected_cost
                sunk_extra = policy.max_attempts * policy.attempt_cost
            scrap_units = alive * lost
            scrap_cost = scrap_units * (accumulated + sunk_extra)
            scrap_cost_total += scrap_cost
            alive *= 1.0 - lost
            if lost < 1.0:
                # Survivors: never-detected escapes stay faulty;
                # reworked units are repaired.
                faulty = faulty * (1.0 - step.coverage) / (1.0 - lost)
            else:
                faulty = 0.0
        elif isinstance(step, AttachStep):
            charge(step.material_cost, step.component_tag)
            charge(step.operation_cost, CostTag.ASSEMBLY)
            faulty = 1.0 - (1.0 - faulty) * step.yield_
        else:
            charge(step.cost, step.cost_tag)
            faulty = 1.0 - (1.0 - faulty) * step.yield_
        step_reports.append(
            StepReport(
                node_id=step.node_id,
                name=step.name,
                unit_cost=step.cost,
                units_processed=processed * volume,
                scrap_units=scrap_units * volume,
                scrap_cost=scrap_cost * volume,
            )
        )

    shipped = alive
    if shipped <= 0:
        raise FlowError(
            f"flow {flow.name!r} ships no units (everything scrapped)"
        )
    direct = accumulated
    chip_cost = cost_by_tag.get(CostTag.CHIP, 0.0)
    # Eq. (1): everything spent, over everything shipped.  Without
    # rework this reduces to direct + scrap/shipped; with rework it also
    # carries the repair spend.
    yield_loss = spend / shipped - direct
    nre_per_shipped = flow.nre / (shipped * volume)
    final = direct + yield_loss + nre_per_shipped
    return CostReport(
        flow_name=flow.name,
        started_units=volume,
        shipped_units=shipped * volume,
        scrapped_units=(1.0 - shipped) * volume,
        direct_cost_per_unit=direct,
        chip_cost_per_unit=chip_cost,
        yield_loss_per_shipped=yield_loss,
        nre_per_shipped=nre_per_shipped,
        final_cost_per_shipped=final,
        escape_fraction=faulty,
        cost_by_tag=cost_by_tag,
        steps=tuple(step_reports),
    )


# ---------------------------------------------------------------------------
# Batched evaluation over a volume family
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CostReportBatch:
    """One flow evaluated at a whole family of volumes, columnar.

    Everything the recurrence produces is volume-independent and stored
    once as Python-float scalars (``shipped_fraction``,
    ``direct_cost_per_unit``, per-step fractions); the volume axis only
    scales unit counts and amortises NRE, so the per-volume columns are
    derived properties.  :meth:`to_reports` bridges back to scalar
    :class:`~repro.cost.moe.report.CostReport` objects bit-identical to
    looping :func:`evaluate` over the same volumes.
    """

    flow_name: str
    volumes: tuple[float, ...]
    shipped_fraction: float
    escape_fraction: float
    direct_cost_per_unit: float
    chip_cost_per_unit: float
    yield_loss_per_shipped: float
    nre: float
    cost_by_tag: dict[CostTag, float]
    step_node_ids: tuple[str, ...]
    step_names: tuple[str, ...]
    step_unit_costs: tuple[float, ...]
    step_processed_fractions: tuple[float, ...]
    step_scrap_unit_fractions: tuple[float, ...]
    step_scrap_cost_fractions: tuple[float, ...]

    def __len__(self) -> int:
        return len(self.volumes)

    @property
    def started_units(self) -> np.ndarray:
        """``(V,)`` started units — the volume axis itself."""
        return np.asarray(self.volumes, dtype=np.float64)

    @property
    def shipped_units(self) -> np.ndarray:
        """``(V,)`` shipped units."""
        return self.shipped_fraction * self.started_units

    @property
    def scrapped_units(self) -> np.ndarray:
        """``(V,)`` scrapped units."""
        return (1.0 - self.shipped_fraction) * self.started_units

    @property
    def nre_per_shipped(self) -> np.ndarray:
        """``(V,)`` NRE amortisation — the only genuinely per-volume cost."""
        return self.nre / (self.shipped_fraction * self.started_units)

    @property
    def final_cost_per_shipped(self) -> np.ndarray:
        """``(V,)`` Eq. (1) final cost per shipped unit."""
        return (
            self.direct_cost_per_unit + self.yield_loss_per_shipped
        ) + self.nre_per_shipped

    @property
    def step_units_processed(self) -> np.ndarray:
        """``(S, V)`` units entering each step at each volume."""
        return np.multiply.outer(
            np.asarray(self.step_processed_fractions, dtype=np.float64),
            self.started_units,
        )

    @property
    def step_scrap_units(self) -> np.ndarray:
        """``(S, V)`` units scrapped at each step at each volume."""
        return np.multiply.outer(
            np.asarray(self.step_scrap_unit_fractions, dtype=np.float64),
            self.started_units,
        )

    @property
    def step_scrap_costs(self) -> np.ndarray:
        """``(S, V)`` cost scrapped at each step at each volume."""
        return np.multiply.outer(
            np.asarray(self.step_scrap_cost_fractions, dtype=np.float64),
            self.started_units,
        )

    def report_at(self, index: int) -> CostReport:
        """The scalar :class:`CostReport` of one volume of the family."""
        volume = self.volumes[index]
        shipped = self.shipped_fraction
        nre_per_shipped = self.nre / (shipped * volume)
        final = (
            self.direct_cost_per_unit + self.yield_loss_per_shipped
        ) + nre_per_shipped
        steps = tuple(
            StepReport(
                node_id=node_id,
                name=name,
                unit_cost=unit_cost,
                units_processed=processed * volume,
                scrap_units=scrap_units * volume,
                scrap_cost=scrap_cost * volume,
            )
            for node_id, name, unit_cost, processed, scrap_units, scrap_cost
            in zip(
                self.step_node_ids,
                self.step_names,
                self.step_unit_costs,
                self.step_processed_fractions,
                self.step_scrap_unit_fractions,
                self.step_scrap_cost_fractions,
            )
        )
        return CostReport(
            flow_name=self.flow_name,
            started_units=volume,
            shipped_units=shipped * volume,
            scrapped_units=(1.0 - shipped) * volume,
            direct_cost_per_unit=self.direct_cost_per_unit,
            chip_cost_per_unit=self.chip_cost_per_unit,
            yield_loss_per_shipped=self.yield_loss_per_shipped,
            nre_per_shipped=nre_per_shipped,
            final_cost_per_shipped=final,
            escape_fraction=self.escape_fraction,
            cost_by_tag=dict(self.cost_by_tag),
            steps=steps,
        )

    def to_reports(self) -> tuple[CostReport, ...]:
        """Scalar reports for every volume, bit-identical to the loop."""
        return tuple(
            self.report_at(index) for index in range(len(self.volumes))
        )


def evaluate_batch(
    flow: ProductionFlow, volumes: Sequence[float]
) -> CostReportBatch:
    """Evaluate a flow analytically at a whole family of volumes.

    The alive/faulty/accumulated/spend recurrence is walked **once**
    (it never sees the volume), recording the per-step fractions; the
    returned :class:`CostReportBatch` broadcasts them over the volume
    axis.  Bit-identical to ``[evaluate(flow, v) for v in volumes]``
    via :meth:`CostReportBatch.to_reports`, at the cost of a single
    step loop.
    """
    flow.validate()
    volume_list = tuple(float(volume) for volume in volumes)
    if not volume_list:
        raise FlowError("evaluate_batch needs at least one volume")
    for volume in volume_list:
        if volume <= 0:
            raise FlowError(f"volume must be positive, got {volume}")

    alive = 1.0
    faulty = 0.0
    accumulated = 0.0
    spend = 0.0
    cost_by_tag: dict[CostTag, float] = {}
    node_ids: list[str] = []
    names: list[str] = []
    unit_costs: list[float] = []
    processed_fractions: list[float] = []
    scrap_unit_fractions: list[float] = []
    scrap_cost_fractions: list[float] = []

    def charge(amount: float, tag: CostTag) -> None:
        nonlocal accumulated, spend
        accumulated += amount
        spend += alive * amount
        cost_by_tag[tag] = cost_by_tag.get(tag, 0.0) + amount

    for step in flow.steps:
        scrap_units = 0.0
        scrap_cost = 0.0
        processed = alive
        if isinstance(step, TestStep):
            charge(step.cost, step.cost_tag)
            detected = faulty * step.coverage
            if step.rework is None:
                lost = detected
                sunk_extra = 0.0
            else:
                policy = step.rework
                lost = detected * (1.0 - policy.recovery_fraction)
                spend += alive * detected * policy.expected_cost
                sunk_extra = policy.max_attempts * policy.attempt_cost
            scrap_units = alive * lost
            scrap_cost = scrap_units * (accumulated + sunk_extra)
            alive *= 1.0 - lost
            if lost < 1.0:
                faulty = faulty * (1.0 - step.coverage) / (1.0 - lost)
            else:
                faulty = 0.0
        elif isinstance(step, AttachStep):
            charge(step.material_cost, step.component_tag)
            charge(step.operation_cost, CostTag.ASSEMBLY)
            faulty = 1.0 - (1.0 - faulty) * step.yield_
        else:
            charge(step.cost, step.cost_tag)
            faulty = 1.0 - (1.0 - faulty) * step.yield_
        node_ids.append(step.node_id)
        names.append(step.name)
        unit_costs.append(step.cost)
        processed_fractions.append(processed)
        scrap_unit_fractions.append(scrap_units)
        scrap_cost_fractions.append(scrap_cost)

    shipped = alive
    if shipped <= 0:
        raise FlowError(
            f"flow {flow.name!r} ships no units (everything scrapped)"
        )
    direct = accumulated
    yield_loss = spend / shipped - direct
    return CostReportBatch(
        flow_name=flow.name,
        volumes=volume_list,
        shipped_fraction=shipped,
        escape_fraction=faulty,
        direct_cost_per_unit=direct,
        chip_cost_per_unit=cost_by_tag.get(CostTag.CHIP, 0.0),
        yield_loss_per_shipped=yield_loss,
        nre=flow.nre,
        cost_by_tag=cost_by_tag,
        step_node_ids=tuple(node_ids),
        step_names=tuple(names),
        step_unit_costs=tuple(unit_costs),
        step_processed_fractions=tuple(processed_fractions),
        step_scrap_unit_fractions=tuple(scrap_unit_fractions),
        step_scrap_cost_fractions=tuple(scrap_cost_fractions),
    )


# ---------------------------------------------------------------------------
# Batched evaluation over single-step flow variants
# ---------------------------------------------------------------------------

def final_costs_for_variants(
    flow: ProductionFlow,
    variants: Sequence[tuple[int, Step]],
    volume: float = 10_000.0,
) -> np.ndarray:
    """Final cost per shipped unit of ``K`` single-step flow variants.

    ``variants`` is a list of ``(step_index, replacement_step)`` pairs;
    variant ``k`` is ``flow`` with step ``step_index`` swapped for
    ``replacement_step``.  All variants are evaluated together with
    ``(K,)``-shaped alive/faulty/accumulated/spend state — one step
    loop instead of ``K`` — performing exactly the scalar recurrence
    elementwise, so each entry is bit-identical to rebuilding the
    variant flow and calling :func:`evaluate` on it.

    Every replacement must keep the original step's type and (for test
    steps) its rework policy — the batch shares one control flow across
    the lanes, only the step *scalars* may differ.  This is precisely
    the contract of the sensitivity knobs.
    """
    flow.validate()
    if volume <= 0:
        raise FlowError(f"volume must be positive, got {volume}")
    lanes = len(variants)
    if lanes == 0:
        return np.zeros(0, dtype=np.float64)
    by_index: dict[int, list[tuple[int, Step]]] = {}
    for lane, (index, replacement) in enumerate(variants):
        if not 0 <= index < len(flow.steps):
            raise FlowError(
                f"variant step index {index} out of range for flow "
                f"{flow.name!r} with {len(flow.steps)} steps"
            )
        original = flow.steps[index]
        if type(replacement) is not type(original):
            raise FlowError(
                f"variant for step {original.name!r} must keep its type, "
                f"got {type(replacement).__name__}"
            )
        if (
            isinstance(original, TestStep)
            and replacement.rework != original.rework
        ):
            raise FlowError(
                f"variant for test step {original.name!r} must keep its "
                "rework policy"
            )
        by_index.setdefault(index, []).append((lane, replacement))

    alive = np.ones(lanes, dtype=np.float64)
    faulty = np.zeros(lanes, dtype=np.float64)
    accumulated = np.zeros(lanes, dtype=np.float64)
    spend = np.zeros(lanes, dtype=np.float64)

    for index, step in enumerate(flow.steps):
        replacements = by_index.get(index, ())

        def column(read) -> np.ndarray:
            lane_values = np.full(lanes, read(step), dtype=np.float64)
            for lane, replacement in replacements:
                lane_values[lane] = read(replacement)
            return lane_values

        if isinstance(step, TestStep):
            cost = column(lambda s: s.cost)
            accumulated += cost
            spend += alive * cost
            coverage = column(lambda s: s.coverage)
            detected = faulty * coverage
            if step.rework is None:
                lost = detected
            else:
                policy = step.rework
                lost = detected * (1.0 - policy.recovery_fraction)
                spend += alive * detected * policy.expected_cost
            alive = alive * (1.0 - lost)
            survivors = lost < 1.0
            escaped = np.zeros(lanes, dtype=np.float64)
            escaped[survivors] = (
                faulty[survivors] * (1.0 - coverage[survivors])
            ) / (1.0 - lost[survivors])
            faulty = escaped
        elif isinstance(step, AttachStep):
            material = column(lambda s: s.material_cost)
            accumulated += material
            spend += alive * material
            operation = column(lambda s: s.operation_cost)
            accumulated += operation
            spend += alive * operation
            faulty = 1.0 - (1.0 - faulty) * column(lambda s: s.yield_)
        else:
            cost = column(lambda s: s.cost)
            accumulated += cost
            spend += alive * cost
            faulty = 1.0 - (1.0 - faulty) * column(lambda s: s.yield_)

    shipped = alive
    if np.any(shipped <= 0):
        raise FlowError(
            f"flow {flow.name!r} ships no units (everything scrapped)"
        )
    direct = accumulated
    yield_loss = spend / shipped - direct
    nre_per_shipped = flow.nre / (shipped * volume)
    return direct + yield_loss + nre_per_shipped
