"""Production flow container (the routed graph of Fig. 4).

A :class:`ProductionFlow` is an ordered sequence of steps ending (by
convention) at the shipped-modules collector.  The paper's Fig. 4 graph
is linear apart from the test's fail branch, which the engines implement
as scrap routing, so an ordered list plus typed steps captures the model
exactly.

NRE (non-recurring engineering, the third term of Eq. (1)) is attached to
the flow and amortised over the shipped volume by the evaluators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ...errors import FlowError
from .nodes import AttachStep, CarrierStep, Step, TestStep


@dataclass
class ProductionFlow:
    """An ordered production flow for one build-up.

    Attributes
    ----------
    name:
        Flow label, e.g. ``"MCM-D(Si)/FC/IP"``.
    steps:
        Steps in processing order.
    nre:
        Non-recurring engineering cost, amortised over shipped units.
    """

    name: str
    steps: list[Step] = field(default_factory=list)
    nre: float = 0.0

    def add(self, step: Step) -> Step:
        """Append a step; node ids must be unique within the flow."""
        if any(s.node_id == step.node_id for s in self.steps):
            raise FlowError(
                f"duplicate node id {step.node_id!r} in flow {self.name!r}"
            )
        self.steps.append(step)
        return step

    def validate(self) -> None:
        """Check the flow is a sensible production line.

        Raises
        ------
        FlowError
            If the flow is empty, has no test step (faults would never be
            detected, making yield data meaningless), or has no carrier.
        """
        if not self.steps:
            raise FlowError(f"flow {self.name!r} has no steps")
        if not any(isinstance(s, CarrierStep) for s in self.steps):
            raise FlowError(
                f"flow {self.name!r} has no carrier/substrate step"
            )
        if not any(isinstance(s, TestStep) for s in self.steps):
            raise FlowError(f"flow {self.name!r} has no test step")
        if self.nre < 0:
            raise FlowError(
                f"NRE cannot be negative, got {self.nre}"
            )

    def step(self, node_id: str) -> Step:
        """Look up a step by node id."""
        for candidate in self.steps:
            if candidate.node_id == node_id:
                return candidate
        raise FlowError(
            f"no step with node id {node_id!r} in flow {self.name!r}"
        )

    def direct_cost(self) -> float:
        """Full build cost of one unit that never fails (Eq. (1) term 1)."""
        return sum(step.cost for step in self.steps)

    def overall_yield(self) -> float:
        """Probability a unit acquires no fault anywhere in the flow."""
        result = 1.0
        for step in self.steps:
            result *= step.yield_
        return result

    def tests(self) -> list[TestStep]:
        """All test steps, in flow order."""
        return [s for s in self.steps if isinstance(s, TestStep)]

    def attach_steps(self) -> list[AttachStep]:
        """All component-attach steps, in flow order."""
        return [s for s in self.steps if isinstance(s, AttachStep)]

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)
