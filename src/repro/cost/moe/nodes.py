"""MOE production-flow node types (paper Fig. 4, ref [8]).

The Modular Optimization Environment models a manufacturing line as a
graph of typed nodes through which units are routed.  Fig. 4 of the paper
shows the generic model for the GPS build-ups with node classes
``Component``, ``Carrier``, ``Process``, ``Assembly``, ``Test`` and
``Collector``; a ``fail`` branch of the test leads to ``SCRAP``.

We reproduce those node types as production *steps* executed in flow
order.  Every step can add cost and can add a latent fault (with the
step's yield); faults stay latent until a :class:`TestStep` detects them
(with its fault coverage) and scraps the unit, losing everything spent on
it so far — exactly the accounting of the paper's Eq. (1).

Cost contributions are tagged (:class:`CostTag`) so the report can split
the Fig. 5 bars into "direct cost", "thereof: chip cost" and "yield
loss".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ...errors import CostModelError
from ...units import check_yield


class CostTag(enum.Enum):
    """What a cost contribution pays for (drives the Fig. 5 breakdown)."""

    SUBSTRATE = "substrate"
    CHIP = "chip"
    PASSIVE = "passive"
    ASSEMBLY = "assembly"
    PROCESS = "process"
    PACKAGING = "packaging"
    TEST = "test"
    OTHER = "other"


@dataclass(frozen=True)
class Step:
    """Base class for all production steps.

    Attributes
    ----------
    node_id:
        Identifier matching the paper's Fig. 4 labels (``"ID3"`` etc.);
        free-form.
    name:
        Human-readable step name.
    """

    node_id: str
    name: str

    @property
    def cost(self) -> float:
        """Deterministic cost this step adds to every unit processed."""
        return 0.0

    @property
    def yield_(self) -> float:
        """Probability the step introduces no new latent fault."""
        return 1.0

    @property
    def cost_tag(self) -> CostTag:
        """Classification of this step's cost."""
        return CostTag.OTHER


@dataclass(frozen=True)
class CarrierStep(Step):
    """The substrate/PCB the module is built on (Fig. 4 ``Carrier``).

    The carrier's latent-fault probability is ``1 - yield``; a carrier
    fault is discovered at the functional test like any other.
    """

    unit_cost: float = 0.0
    carrier_yield: float = 1.0

    def __post_init__(self) -> None:
        if self.unit_cost < 0:
            raise CostModelError(
                f"carrier cost cannot be negative, got {self.unit_cost}"
            )
        check_yield(self.carrier_yield, f"{self.name} yield")

    @property
    def cost(self) -> float:
        return self.unit_cost

    @property
    def yield_(self) -> float:
        return self.carrier_yield

    @property
    def cost_tag(self) -> CostTag:
        return CostTag.SUBSTRATE


@dataclass(frozen=True)
class ProcessStep(Step):
    """A per-unit process operation (paste impression, rerouting, ...)."""

    unit_cost: float = 0.0
    process_yield: float = 1.0
    tag: CostTag = CostTag.PROCESS

    def __post_init__(self) -> None:
        if self.unit_cost < 0:
            raise CostModelError(
                f"process cost cannot be negative, got {self.unit_cost}"
            )
        check_yield(self.process_yield, f"{self.name} yield")

    @property
    def cost(self) -> float:
        return self.unit_cost

    @property
    def yield_(self) -> float:
        return self.process_yield

    @property
    def cost_tag(self) -> CostTag:
        return self.tag


@dataclass(frozen=True)
class AttachStep(Step):
    """Attach ``quantity`` components (Fig. 4 ``Assembly`` + ``Component``).

    Combines the component material stream and the assembly operation:

    * each attached component costs ``component_cost`` and carries a
      latent-defect probability ``1 - component_yield`` (the "not fully
      tested chips" of Table 2);
    * each attach operation costs ``attach_cost`` and succeeds with
      ``attach_yield``; ``per_operation`` selects whether that yield
      compounds over the quantity (wire bonds, SMDs) or applies once to
      the whole step (Table 2's chip-assembly row).
    """

    quantity: int = 1
    component_cost: float = 0.0
    component_yield: float = 1.0
    attach_cost: float = 0.0
    attach_yield: float = 1.0
    per_operation: bool = True
    component_tag: CostTag = CostTag.CHIP

    def __post_init__(self) -> None:
        if self.quantity < 0:
            raise CostModelError(
                f"attach quantity cannot be negative, got {self.quantity}"
            )
        if self.component_cost < 0 or self.attach_cost < 0:
            raise CostModelError(
                f"costs cannot be negative in step {self.name!r}"
            )
        check_yield(self.component_yield, f"{self.name} component yield")
        check_yield(self.attach_yield, f"{self.name} attach yield")

    @property
    def material_cost(self) -> float:
        """Total component (material) cost for the step."""
        return self.quantity * self.component_cost

    @property
    def operation_cost(self) -> float:
        """Total assembly (labour/machine) cost for the step."""
        return self.quantity * self.attach_cost

    @property
    def cost(self) -> float:
        return self.material_cost + self.operation_cost

    @property
    def yield_(self) -> float:
        material = self.component_yield**self.quantity
        if self.per_operation:
            attach = self.attach_yield**self.quantity
        else:
            attach = self.attach_yield if self.quantity > 0 else 1.0
        return material * attach

    @property
    def cost_tag(self) -> CostTag:
        return self.component_tag


@dataclass(frozen=True)
class ReworkPolicy:
    """Repair policy for units failing a test.

    A detected-faulty unit is reworked up to ``max_attempts`` times;
    each attempt costs ``attempt_cost`` and clears the fault with
    probability ``success_probability``.  Units still faulty after the
    last attempt are scrapped.  The original MOE tool routes fail
    branches to arbitrary nodes; bounded rework-and-retest is the case
    that matters for MCM lines (replace a bad die, re-bond).
    """

    attempt_cost: float
    success_probability: float
    max_attempts: int = 1

    def __post_init__(self) -> None:
        if self.attempt_cost < 0:
            raise CostModelError(
                f"rework cost cannot be negative, got {self.attempt_cost}"
            )
        if not (0.0 < self.success_probability <= 1.0):
            raise CostModelError(
                "rework success probability must lie in (0, 1], got "
                f"{self.success_probability}"
            )
        if self.max_attempts < 1:
            raise CostModelError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    @property
    def recovery_fraction(self) -> float:
        """Probability a detected-faulty unit is eventually repaired."""
        return 1.0 - (1.0 - self.success_probability) ** self.max_attempts

    @property
    def expected_attempts(self) -> float:
        """Expected rework attempts per detected-faulty unit."""
        p = self.success_probability
        return (1.0 - (1.0 - p) ** self.max_attempts) / p

    @property
    def expected_cost(self) -> float:
        """Expected rework spend per detected-faulty unit."""
        return self.attempt_cost * self.expected_attempts


@dataclass(frozen=True)
class TestStep(Step):
    """A test with finite fault coverage (Fig. 4 ``Test`` + ``SCRAP``).

    A faulty unit is detected with probability ``coverage``; detected
    units are reworked per the optional :class:`ReworkPolicy` and
    scrapped if unrepairable, undetected faults escape and ship.  Good
    units always pass (no false rejects in the paper's model).
    """

    #: Not a pytest test class, despite the domain name.
    __test__ = False

    test_cost: float = 0.0
    coverage: float = 1.0
    rework: Optional[ReworkPolicy] = None

    def __post_init__(self) -> None:
        if self.test_cost < 0:
            raise CostModelError(
                f"test cost cannot be negative, got {self.test_cost}"
            )
        if not (0.0 <= self.coverage <= 1.0):
            raise CostModelError(
                f"fault coverage must lie in [0, 1], got {self.coverage}"
            )

    @property
    def cost(self) -> float:
        return self.test_cost

    @property
    def cost_tag(self) -> CostTag:
        return CostTag.TEST


@dataclass(frozen=True)
class InspectStep(TestStep):
    """A zero-cost perfect screen (outgoing inspection).

    Used after packaging so that packaging-induced faults become scrap
    (with the full module cost lost) instead of silently shipping.
    """

    def __post_init__(self) -> None:
        super().__post_init__()


@dataclass
class UnitState:
    """Mutable state of one unit moving through the flow (Monte Carlo)."""

    accumulated_cost: float = 0.0
    faulty: bool = False
    scrapped: bool = False
    scrapped_at: Optional[str] = None
    cost_by_tag: dict[CostTag, float] = field(default_factory=dict)

    def add_cost(self, amount: float, tag: CostTag) -> None:
        """Accumulate spend on this unit."""
        self.accumulated_cost += amount
        self.cost_by_tag[tag] = self.cost_by_tag.get(tag, 0.0) + amount
