"""Cost modelling substrate: MOE engine, yield models, calibration."""

from .calibration import (
    CalibrationResult,
    DEFAULT_BARE_DISCOUNT,
    FIG5_TARGET_RATIOS,
    calibrate_chip_costs,
)
from .sensitivity import (
    Knob,
    Sensitivity,
    rank_cost_drivers,
    rank_cost_drivers_pointwise,
    sensitivity_of,
)
from .yieldmodels import (
    MurphyYield,
    PerOperationYield,
    PoissonYield,
    SeedsYield,
    StepYield,
    compound_yield,
    defect_probability,
)

__all__ = [
    "CalibrationResult",
    "DEFAULT_BARE_DISCOUNT",
    "FIG5_TARGET_RATIOS",
    "Knob",
    "MurphyYield",
    "PerOperationYield",
    "PoissonYield",
    "SeedsYield",
    "Sensitivity",
    "StepYield",
    "calibrate_chip_costs",
    "compound_yield",
    "rank_cost_drivers",
    "rank_cost_drivers_pointwise",
    "sensitivity_of",
    "defect_probability",
]
