"""Calibration of the confidential chip costs (Table 2's XX/YY/ZZ/AA).

The paper redacts the chip costs ("chip cost is confidential") yet they
dominate the Fig. 5 bars ("thereof: chip cost").  This module recovers
values consistent with the published results by least-squares fitting the
Fig. 5 cost ratios (104.7 / 112.8 / 105.3 % of the PCB reference) over
the *actual* MOE evaluation of the four build-up flows, under two
plausibility constraints:

* bare dice are slightly cheaper than packaged, fully-tested parts
  (the paper calls them "the (cheaper) not fully tested chips") —
  expressed as a fixed bare/packaged discount;
* the DSP correlator costs more than the RF chip (it is the ~10x larger
  die, Table 1).

A perfect fit is impossible: as the analysis in EXPERIMENTS.md shows,
Table 2's inputs cannot produce the exact published triple for any chip
cost, because build-up 2's low penalty requires chip-dominated costs
while the build-up 3 vs 4 gap requires the opposite.  The calibrated
optimum preserves the published *ordering* (PCB < WB/SMD < FC/IP&SMD <
FC/IP) with penalties in the published few-percent band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np
from scipy.optimize import least_squares

from ..errors import CalibrationError

#: Fig. 5 targets as ratios to the PCB reference.
FIG5_TARGET_RATIOS = {2: 1.047, 3: 1.128, 4: 1.053}

#: Bare-die cost as a fraction of the packaged part (plausibility prior).
DEFAULT_BARE_DISCOUNT = 0.95

#: DSP-to-RF cost ratio prior (the correlator die is far larger).
DEFAULT_DSP_TO_RF_RATIO = 2.0


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a chip-cost calibration run."""

    rf_packaged: float
    rf_bare: float
    dsp_packaged: float
    dsp_bare: float
    achieved_ratios: dict[int, float]
    target_ratios: dict[int, float]
    residual_norm: float
    ordering_preserved: bool

    @property
    def max_ratio_error(self) -> float:
        """Largest absolute error across the three Fig. 5 ratios."""
        return max(
            abs(self.achieved_ratios[i] - self.target_ratios[i])
            for i in self.target_ratios
        )


def calibrate_chip_costs(
    evaluate_ratios: Optional[
        Callable[[float, float, float, float], dict[int, float]]
    ] = None,
    bare_discount: float = DEFAULT_BARE_DISCOUNT,
    initial_rf: float = 160.0,
    initial_dsp: float = 320.0,
    bounds: tuple[float, float] = (20.0, 800.0),
) -> CalibrationResult:
    """Solve for chip costs that best reproduce the Fig. 5 ratios.

    Parameters
    ----------
    evaluate_ratios:
        Callable mapping ``(rf_packaged, rf_bare, dsp_packaged,
        dsp_bare)`` to the final-cost ratios ``{2: r2, 3: r3, 4: r4}``
        relative to build-up 1.  Defaults to the full GPS MOE evaluation.
    bare_discount:
        Bare-die cost as a fraction of the packaged part.
    initial_rf / initial_dsp:
        Starting packaged-part costs.
    bounds:
        Box bounds on the packaged costs.

    Raises
    ------
    CalibrationError
        If the optimiser fails or the resulting ordering is degenerate.
    """
    if not (0.0 < bare_discount <= 1.0):
        raise CalibrationError(
            f"bare discount must lie in (0, 1], got {bare_discount}"
        )
    if evaluate_ratios is None:
        evaluate_ratios = _gps_ratio_evaluator()

    targets = FIG5_TARGET_RATIOS

    def residuals(params: Sequence[float]) -> np.ndarray:
        rf_pkg, dsp_pkg = params
        ratios = evaluate_ratios(
            rf_pkg, rf_pkg * bare_discount, dsp_pkg, dsp_pkg * bare_discount
        )
        return np.array([ratios[i] - targets[i] for i in (2, 3, 4)])

    try:
        solution = least_squares(
            residuals,
            x0=[initial_rf, initial_dsp],
            bounds=([bounds[0], bounds[0]], [bounds[1], bounds[1]]),
        )
    except Exception as exc:  # pragma: no cover - scipy failure path
        raise CalibrationError(f"optimiser failed: {exc}") from exc
    if not solution.success:
        raise CalibrationError(
            f"calibration did not converge: {solution.message}"
        )
    rf_pkg, dsp_pkg = solution.x
    achieved = evaluate_ratios(
        rf_pkg, rf_pkg * bare_discount, dsp_pkg, dsp_pkg * bare_discount
    )
    ordering = 1.0 < achieved[2] < achieved[4] < achieved[3]
    return CalibrationResult(
        rf_packaged=float(rf_pkg),
        rf_bare=float(rf_pkg * bare_discount),
        dsp_packaged=float(dsp_pkg),
        dsp_bare=float(dsp_pkg * bare_discount),
        achieved_ratios=achieved,
        target_ratios=dict(targets),
        residual_norm=float(np.linalg.norm(solution.fun)),
        ordering_preserved=ordering,
    )


def _gps_ratio_evaluator() -> Callable[
    [float, float, float, float], dict[int, float]
]:
    """Default evaluator: the full GPS build-up flows under MOE.

    Substrate areas are computed once (they do not depend on chip cost).
    """
    from ..gps import data as gps_data
    from ..gps.buildups import area_for, flow_for
    from .moe import evaluate

    areas = {i: area_for(i).substrate_area_cm2 for i in (1, 2, 3, 4)}

    def evaluator(
        rf_pkg: float, rf_bare: float, dsp_pkg: float, dsp_bare: float
    ) -> dict[int, float]:
        costs = gps_data.ChipCosts(
            rf_packaged=rf_pkg,
            rf_bare=rf_bare,
            dsp_packaged=dsp_pkg,
            dsp_bare=dsp_bare,
        )
        reports = {
            i: evaluate(flow_for(i, areas[i], costs)) for i in (1, 2, 3, 4)
        }
        base = reports[1].final_cost_per_shipped
        return {
            i: reports[i].final_cost_per_shipped / base for i in (2, 3, 4)
        }

    return evaluator
