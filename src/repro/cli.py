"""Command-line interface: run the GPS case study from the shell.

Installed as ``repro-gps``.  Subcommands:

* ``study`` (default) — run the full trade-off study and print the
  Fig. 3/5/6 tables plus the recommendation;
* ``flow N`` — render the MOE production flow of build-up N (Fig. 4);
* ``compare`` — print paper-vs-measured for every published number;
* ``calibrate`` — re-run the confidential chip-cost calibration;
* ``sweep`` — fan the methodology out over a design-space grid
  (volume x substrate rule x thin-film process x tolerance class x
  technology Q model x NRE scenario x FoM weight vector) and print
  Pareto-ready rows.  ``--engine serial|process|stacked|sharded|async``
  plus ``--jobs N`` / ``--shards K`` pick the execution engine
  (identical rows either way); ``--cache-stats`` prints the per-table
  memo tally, merged across workers.  Cross-host sharding:
  ``--shards K --shard-index I --shard-dir DIR`` evaluates one shard
  and writes a portable artifact (``--resume`` skips the evaluation
  when a valid artifact for the same grid and shard already exists);
  ``--merge DIR`` reassembles shard artifacts — produced on one host
  or many — into the canonical report.  Running the sweep as a
  *service* instead of by hand: ``--queue-init MANIFEST --shards K``
  writes a work-queue manifest next to the shard directory, then any
  number of ``--queue MANIFEST`` workers claim, evaluate and retry
  shards until the queue drains;
* ``gather DIR`` — merge the shard artifacts in DIR into the canonical
  report; ``--watch`` keeps polling (with live progress on stderr)
  while queue workers are still filling the directory, merging each
  artifact the moment it atomically appears.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
import tempfile
from pathlib import Path
from typing import Optional, Sequence

from .area.substrate import SUBSTRATE_RULES
from .circuits.qfactor import Q_MODEL_SCENARIOS, SubstrateLossQModel
from .core.decision import full_report
from .core.executors import (
    ENGINE_NAMES,
    SHARDS_ENV,
    resolve_executor,
    shards_from_env,
)
from .core.figure_of_merit import FomWeights
from .core.framestore import (
    MANIFEST_NAME as STORE_MANIFEST_NAME,
    MAX_ROWS_ENV,
    ChunkedFrameStore,
    max_rows_from_env,
    merge_artifacts_to_store,
    store_matches,
)
from .core.gather import (
    GatherError,
    gather_directory,
    gather_directory_to_store,
    watch_directory,
)
from .core.queue import manifest_for_grid, read_manifest, write_manifest
from .core.resultframe import ResultFrame
from .core.sharding import (
    ShardedExecutor,
    ShardMergeError,
    artifact_matches,
    find_shard_artifacts,
    grid_fingerprint,
    grid_order_digest,
    merge_shard_artifacts,
    read_shard_artifact,
    shard_filename,
    write_shard_artifact,
)
from .core.sweep import (
    BATCH_FILL_ENV,
    SweepGrid,
    SweepReport,
    batch_fill_enabled,
)
from .core.queryservice import (
    QUERY_KINDS,
    SENSITIVITY_AXES,
    QueryError,
    QueryService,
    response_bytes,
    serve_warehouse,
)
from .core.warehouse import (
    ingest_shard_directory,
    read_warehouse_manifest,
)
from .cost.calibration import calibrate_chip_costs
from .cost.moe.builder import render_flow
from .errors import SpecificationError
from .gps.buildups import flow_for
from .gps.study import (
    NRE_SCENARIOS,
    build_gps_warehouse,
    paper_comparison,
    run_adaptive_gps_sweep,
    run_gps_queue_worker,
    run_gps_shard,
    run_gps_study,
    run_gps_sweep,
    spill_adaptive_gps_sweep,
    spill_gps_sweep,
)
from .passives.thin_film import THIN_FILM_PROCESSES
from .passives.tolerance import TOLERANCE_CLASSES


def _cmd_study(args: argparse.Namespace) -> int:
    result = run_gps_study(volume=args.volume)
    print(full_report(result))
    return 0


def _cmd_flow(args: argparse.Namespace) -> int:
    flow = flow_for(args.implementation)
    print(render_flow(flow))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    del args
    result = run_gps_study()
    comparison = paper_comparison(result)
    for metric, values in comparison.items():
        print(f"{metric}:")
        for implementation, (paper, measured) in values.items():
            print(
                f"  impl {implementation}: paper={paper:g} "
                f"measured={measured:.3g}"
            )
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    result = calibrate_chip_costs(bare_discount=args.bare_discount)
    print(
        f"RF chip:  packaged {result.rf_packaged:.1f}, "
        f"bare {result.rf_bare:.1f}"
    )
    print(
        f"DSP chip: packaged {result.dsp_packaged:.1f}, "
        f"bare {result.dsp_bare:.1f}"
    )
    for implementation, ratio in result.achieved_ratios.items():
        target = result.target_ratios[implementation]
        print(
            f"impl {implementation}: achieved {100 * ratio:.1f}% "
            f"(paper {100 * target:.1f}%)"
        )
    print(f"ordering preserved: {result.ordering_preserved}")
    return 0


def _axis_values(raw: str, registry: dict, axis: str) -> tuple:
    """Parse a comma-separated axis list; ``paper`` means the default."""
    values = []
    for token in raw.split(","):
        token = token.strip().lower()
        if not token:
            continue
        if token == "paper":
            values.append(None)
        elif token in registry:
            values.append(registry[token])
        else:
            known = ", ".join(["paper", *sorted(registry)])
            raise argparse.ArgumentTypeError(
                f"unknown {axis} {token!r} (choose from {known})"
            )
    if not values:
        raise argparse.ArgumentTypeError(f"empty {axis} list")
    return tuple(values)


def _positive_int(raw: str) -> int:
    """Parse a strictly positive integer argument."""
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{raw!r} is not an integer"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"need a positive worker count, got {value}"
        )
    return value


def _positive_row_budget(raw: str) -> int:
    """Parse the --max-rows-in-memory budget (a strictly positive int)."""
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{raw!r} is not an integer"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"need a positive row budget, got {value}"
        )
    return value


def _positive_float(raw: str) -> float:
    """Parse a strictly positive, finite float argument (durations)."""
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{raw!r} is not a number"
        ) from None
    if not math.isfinite(value) or value <= 0:
        raise argparse.ArgumentTypeError(
            f"need a positive finite number of seconds, got {raw!r}"
        )
    return value


def _nonnegative_int(raw: str) -> int:
    """Parse a non-negative integer argument (shard indices)."""
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{raw!r} is not an integer"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"need a non-negative index, got {value}"
        )
    return value


def _nonnegative_float(raw: str) -> float:
    """Parse a non-negative, finite float argument (dominance margins)."""
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{raw!r} is not a number"
        ) from None
    if not math.isfinite(value) or value < 0:
        raise argparse.ArgumentTypeError(
            f"need a non-negative finite number, got {raw!r}"
        )
    return value


def _coarse_rank_count(raw: str) -> int:
    """Parse the --coarse rank count (an integer of at least 2)."""
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{raw!r} is not an integer"
        ) from None
    if value < 2:
        raise argparse.ArgumentTypeError(
            f"the coarse pass needs at least 2 ranks per axis, got {value}"
        )
    return value


def _sweep_error(message: str) -> "SystemExit":
    """Abort the sweep subcommand with argparse's exit contract.

    Bad engine or worker configuration — whether it arrived via flags
    or the ``REPRO_SWEEP_*`` environment — must exit with code 2 and a
    one-line message, never a traceback.
    """
    print(f"repro-gps sweep: error: {message}", file=sys.stderr)
    return SystemExit(2)


def _q_model_values(raw: str) -> tuple:
    """Parse the Q-model axis list.

    Tokens are ``paper`` (the per-process constant-Q default), a named
    scenario from :data:`repro.circuits.qfactor.Q_MODEL_SCENARIOS`, or
    ``tan=<value>`` for a substrate-loss model with a custom dielectric
    loss tangent — the knob behind "at what loss tangent does thin film
    stop winning?".
    """
    values = []
    for token in raw.split(","):
        token = token.strip().lower()
        if not token:
            continue
        if token == "paper":
            values.append(None)
        elif token in Q_MODEL_SCENARIOS:
            values.append(Q_MODEL_SCENARIOS[token])
        elif token.startswith("tan="):
            try:
                tan_delta = float(token[len("tan="):])
            except ValueError:
                raise argparse.ArgumentTypeError(
                    f"loss tangent {token[len('tan='):]!r} is not a number"
                ) from None
            if not math.isfinite(tan_delta) or tan_delta <= 0:
                raise argparse.ArgumentTypeError(
                    f"loss tangent must be positive and finite, "
                    f"got {tan_delta:g}"
                )
            values.append(SubstrateLossQModel(tan_delta_ref=tan_delta))
        else:
            known = ", ".join(
                ["paper", "tan=<value>", *sorted(Q_MODEL_SCENARIOS)]
            )
            raise argparse.ArgumentTypeError(
                f"unknown Q model {token!r} (choose from {known})"
            )
    if not values:
        raise argparse.ArgumentTypeError("empty Q-model list")
    return tuple(values)


def _fom_weight_values(raw: str) -> tuple:
    """Parse the FoM-weights axis: ``paper`` or ``perf:size:cost`` triples."""
    values = []
    for token in raw.split(","):
        token = token.strip().lower()
        if not token:
            continue
        if token == "paper":
            values.append(None)
            continue
        parts = token.split(":")
        if len(parts) != 3:
            raise argparse.ArgumentTypeError(
                f"FoM weights {token!r} must be perf:size:cost"
            )
        try:
            performance, size, cost = (float(part) for part in parts)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"FoM weights {token!r} must be three numbers"
            ) from None
        if not all(
            math.isfinite(value) and value >= 0
            for value in (performance, size, cost)
        ):
            raise argparse.ArgumentTypeError(
                f"FoM weights must be non-negative finite numbers, "
                f"got {token!r}"
            )
        values.append(
            FomWeights(performance=performance, size=size, cost=cost)
        )
    if not values:
        raise argparse.ArgumentTypeError("empty FoM-weights list")
    return tuple(values)


def _volume_values(raw: str) -> tuple:
    """Parse a comma-separated list of positive volumes."""
    values = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            volume = float(token)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"volume {token!r} is not a number"
            ) from None
        if volume <= 0:
            raise argparse.ArgumentTypeError(
                f"volume must be positive, got {volume:g}"
            )
        values.append(volume)
    if not values:
        raise argparse.ArgumentTypeError("empty volume list")
    return tuple(values)


def _print_cache_stats(stats: dict) -> None:
    """Render the per-table memo tally (merged across workers)."""
    print("Evaluation cache (merged across workers):")
    for table, tally in stats["tables"].items():
        print(
            f"  {table:>12}: {tally['hits']} hits / "
            f"{tally['misses']} misses / {tally['entries']} entries"
        )


def _print_sweep_report(report, n_points: int, args) -> None:
    """Render a sweep report (table or CSV), shared with --merge."""
    if args.csv:
        # Columnar export: the frame formats whole columns at once
        # (byte-identical to the historical per-row str() path).
        print(report.frame.csv_header())
        for line in report.frame.csv_lines():
            print(line)
        if args.cache_stats:
            # Keep stdout pure CSV; the tally goes to stderr.
            print(
                "cache: "
                + " ".join(
                    f"{table}={tally['hits']}h/{tally['misses']}m"
                    for table, tally in report.cache_stats[
                        "tables"
                    ].items()
                ),
                file=sys.stderr,
            )
        return

    print(
        f"Design-space sweep: {n_points} points, {len(report.rows)} rows"
    )
    print(
        f"{'volume':>8} | {'substrate':>16} | {'process':>16} | "
        f"{'tolerance':>10} | {'q-model':>14} | {'nre':>10} | "
        f"{'weights':>9} | {'build-up':>20} | {'perf':>5} | "
        f"{'area%':>6} | {'cost%':>6} | {'FoM':>5} | flags"
    )
    for row in report.rows:
        flags = "".join(
            ("W" if row.is_winner else "", "P" if row.on_pareto_front else "")
        )
        print(
            f"{row.volume:>8g} | {row.substrate:>16.16} | "
            f"{row.process:>16.16} | {row.tolerance:>10} | "
            f"{row.q_model:>14.14} | {row.nre:>10.10} | "
            f"{row.weights:>9.9} | "
            f"{row.candidate:>20.20} | {row.performance:>5.2f} | "
            f"{row.area_percent:>6.1f} | {row.cost_percent:>6.1f} | "
            f"{row.figure_of_merit:>5.2f} | {flags}"
        )
    print("\nWinner counts (W = point winner, P = on Pareto front):")
    for name, count in sorted(report.winner_counts().items()):
        print(f"  {name}: {count}/{n_points}")
    best = report.best_row()
    print(
        f"Best overall: {best.candidate} (FoM {best.figure_of_merit:.2f}) "
        f"at volume={best.volume:g}, substrate={best.substrate}, "
        f"process={best.process}, tolerance={best.tolerance}, "
        f"q-model={best.q_model}, nre={best.nre}, weights={best.weights}"
    )
    hits, misses = report.cache_stats["hits"], report.cache_stats["misses"]
    print(f"Memoised sub-results: {hits} hits / {misses} misses")
    if args.cache_stats:
        _print_cache_stats(report.cache_stats)


def _resolve_max_rows(args: argparse.Namespace, error) -> Optional[int]:
    """The out-of-core row budget: --max-rows-in-memory, else the env.

    ``None`` means in-RAM (the reference path).  A malformed
    ``$REPRO_SWEEP_MAX_ROWS`` exits 2 through ``error`` — the same
    contract as every other bad ``REPRO_SWEEP_*`` default.
    """
    if args.max_rows_in_memory is not None:
        return args.max_rows_in_memory
    try:
        return max_rows_from_env()
    except SpecificationError as exc:
        raise error(str(exc)) from None


def _print_store_report(
    store: ChunkedFrameStore, n_points: Optional[int], args
) -> None:
    """Render a chunked frame store, byte-identical to the in-RAM path.

    CSV streams the store chunk by chunk — stdout is the same byte
    stream :func:`_print_sweep_report` produces, without ever holding
    the whole frame.  The table needs winner counts and the best row
    anyway, so it crosses the identity bridge
    (:meth:`~repro.core.framestore.ChunkedFrameStore.to_frame`) and
    reuses the in-RAM renderer.
    """
    if args.csv:
        print(ResultFrame.csv_header())
        for line in store.csv_lines():
            print(line)
        if args.cache_stats:
            stats = store.meta.get("cache_stats", {})
            print(
                "cache: "
                + " ".join(
                    f"{table}={tally['hits']}h/{tally['misses']}m"
                    for table, tally in stats.get("tables", {}).items()
                ),
                file=sys.stderr,
            )
        return
    frame = store.to_frame()
    report = SweepReport(
        cells=(),
        frame=frame,
        cache_stats=store.meta.get("cache_stats", {}),
    )
    if n_points is None:
        # Every grid point has exactly one winning row.
        n_points = int(frame.column("is_winner").sum())
    _print_sweep_report(report, n_points, args)


def _reuse_or_create_store(
    directory,
    *,
    fingerprint: str,
    order_digest: str,
    total_points: int,
    build,
) -> ChunkedFrameStore:
    """A complete matching store at ``directory``, or a fresh one.

    The ``--spill-dir`` contract, same discipline as ``--resume``: an
    existing store is re-read only when it is complete and holds
    exactly this grid (fingerprint, canonical order, size).  Anything
    else — a half-written store, a foreign grid — is a typed refusal;
    silently clobbering or silently re-reading the wrong results would
    both be worse.
    """
    directory = Path(directory)
    if (directory / STORE_MANIFEST_NAME).exists():
        store = ChunkedFrameStore.open(directory)
        if not store.complete:
            raise SpecificationError(
                f"spill directory {directory} holds an incomplete "
                f"frame store (crashed run?); remove it and re-run"
            )
        if not store_matches(
            store,
            fingerprint=fingerprint,
            order_digest=order_digest,
            total_points=total_points,
        ):
            raise SpecificationError(
                f"spill directory {directory} holds a frame store for "
                f"a different grid; remove it or pick another "
                f"--spill-dir"
            )
        # Reuse is chatter, not output: stdout stays pure table/CSV.
        print(
            f"reusing spilled frame store at {directory} "
            f"({store.chunk_count} chunks, {store.total_rows} rows)",
            file=sys.stderr,
        )
        return store
    return build(directory)


#: Grid-axis flags and their parser defaults: --merge takes the grid
#: from the artifacts and --queue takes it from the manifest, so
#: overriding any of these alongside either is a contradiction worth
#: refusing (not silently ignoring).
_GRID_AXIS_DEFAULTS = {
    "volumes": (10_000.0,),
    "substrates": (None,),
    "processes": (None,),
    "tolerances": (None,),
    "q_models": (None,),
    "nres": (None,),
    "fom_weights": (None,),
}


def _registry_token(value, registry: dict, axis: str) -> str:
    """The CLI token that names ``value`` on a registry-backed axis."""
    if value is None:
        return "paper"
    for name, candidate in registry.items():
        if candidate is value or candidate == value:
            return name
    raise SpecificationError(
        f"cannot name {axis} value {value!r} in a queue manifest"
    )


def _axis_spec(values, registry: dict, axis: str) -> str:
    return ",".join(
        _registry_token(value, registry, axis) for value in values
    )


def _q_model_spec(values) -> str:
    """Q-model axis tokens; custom loss models become ``tan=<repr>``."""
    tokens = []
    for value in values:
        if value is None:
            tokens.append("paper")
            continue
        for name, candidate in Q_MODEL_SCENARIOS.items():
            if candidate is value or candidate == value:
                tokens.append(name)
                break
        else:
            tokens.append(f"tan={value.tan_delta_ref!r}")
    return ",".join(tokens)


def _fom_weight_spec(values) -> str:
    return ",".join(
        "paper"
        if value is None
        else f"{value.performance!r}:{value.size!r}:{value.cost!r}"
        for value in values
    )


def _grid_spec_from_args(args: argparse.Namespace) -> dict:
    """Serialise the parsed grid axes back into their CLI token lists.

    Stored in the queue manifest so every worker rebuilds *exactly*
    the grid the queue was initialised for — ``repr()`` round-trips
    floats bit-exactly, and registry axes are stored by name.  The
    fingerprint check in the worker is the belt to this braces.
    """
    return {
        "volumes": ",".join(repr(volume) for volume in args.volumes),
        "substrates": _axis_spec(
            args.substrates, SUBSTRATE_RULES, "substrate"
        ),
        "processes": _axis_spec(
            args.processes, THIN_FILM_PROCESSES, "process"
        ),
        "tolerances": _axis_spec(
            args.tolerances, TOLERANCE_CLASSES, "tolerance"
        ),
        "q_models": _q_model_spec(args.q_models),
        "nres": _axis_spec(args.nres, NRE_SCENARIOS, "NRE scenario"),
        "fom_weights": _fom_weight_spec(args.fom_weights),
    }


def _grid_from_spec(spec, source: str) -> SweepGrid:
    """Rebuild the sweep grid from a manifest's ``grid_spec`` tokens."""
    if not isinstance(spec, dict):
        raise SpecificationError(
            f"{source} carries no grid_spec, so the worker cannot "
            f"rebuild the grid; re-run --queue-init (or drive the "
            f"queue through the API with an explicit grid)"
        )
    try:
        return SweepGrid(
            volumes=_volume_values(str(spec["volumes"])),
            substrates=_axis_values(
                str(spec["substrates"]), SUBSTRATE_RULES, "substrate"
            ),
            processes=_axis_values(
                str(spec["processes"]), THIN_FILM_PROCESSES, "process"
            ),
            tolerances=_axis_values(
                str(spec["tolerances"]), TOLERANCE_CLASSES, "tolerance"
            ),
            q_models=_q_model_values(str(spec["q_models"])),
            nres=_axis_values(
                str(spec["nres"]), NRE_SCENARIOS, "NRE scenario"
            ),
            fom_weights=_fom_weight_values(str(spec["fom_weights"])),
        )
    except KeyError as exc:
        raise SpecificationError(
            f"{source}: grid_spec is missing axis {exc.args[0]!r}"
        ) from None
    except argparse.ArgumentTypeError as exc:
        raise SpecificationError(
            f"{source}: bad grid_spec ({exc})"
        ) from None


def _resumable_artifact(
    path: Path, grid: SweepGrid, shards: int, shard_index: int
) -> Optional[str]:
    """Fingerprint of a valid, matching artifact at ``path`` (or None).

    The ``--resume`` check: an artifact counts as "already evaluated"
    only when it parses, fingerprints the *same resolved grid* in the
    same canonical order, and covers exactly the requested shard of
    the requested partition.  Anything else — unreadable file, foreign
    grid, different shard geometry — means the shard must be
    (re-)evaluated; resuming never risks a silently wrong artifact.
    """
    if not path.exists():
        return None
    try:
        artifact = read_shard_artifact(path)
    except ShardMergeError:
        return None
    points = grid.points()
    if artifact_matches(
        artifact,
        fingerprint=grid_fingerprint(points),
        order_digest=grid_order_digest(points),
        shards=shards,
        shard_index=shard_index,
        total_points=len(points),
    ):
        return artifact.fingerprint
    return None


def _cmd_sweep_queue_init(args: argparse.Namespace) -> int:
    """The --queue-init path: write the work-queue manifest."""
    if args.queue is not None:
        raise _sweep_error(
            "--queue-init writes the manifest, --queue runs a worker "
            "against it; one invocation does one or the other"
        )
    if args.shard_index is not None:
        raise _sweep_error(
            "--queue-init partitions the whole grid; drop --shard-index"
        )
    if args.resume:
        raise _sweep_error(
            "the queue always skips shards with valid artifacts; "
            "--resume does not apply to --queue-init"
        )
    if args.csv:
        raise _sweep_error(
            "--queue-init evaluates nothing; --csv applies to reports "
            "(gather the finished queue instead)"
        )
    if args.engine is not None or args.jobs is not None:
        raise _sweep_error(
            "--queue-init evaluates nothing; give --engine/--jobs to "
            "the workers (sweep --queue)"
        )
    if args.max_rows_in_memory is not None or args.spill_dir is not None:
        raise _sweep_error(
            "--queue-init evaluates nothing; --max-rows-in-memory/"
            "--spill-dir apply where the report is produced "
            "(sweep --merge or gather)"
        )
    try:
        shards = (
            args.shards if args.shards is not None else shards_from_env()
        )
    except SpecificationError as exc:
        raise _sweep_error(str(exc)) from None
    if shards is None:
        raise _sweep_error(
            f"--queue-init needs the partition geometry; give "
            f"--shards (or ${SHARDS_ENV})"
        )
    grid = SweepGrid(
        volumes=args.volumes,
        substrates=args.substrates,
        processes=args.processes,
        tolerances=args.tolerances,
        q_models=args.q_models,
        nres=args.nres,
        fom_weights=args.fom_weights,
    )
    try:
        manifest = manifest_for_grid(
            grid,
            shards=shards,
            lease_ttl=(
                args.lease_ttl if args.lease_ttl is not None else 300.0
            ),
            max_attempts=(
                args.max_attempts if args.max_attempts is not None else 3
            ),
            grid_spec=_grid_spec_from_args(args),
        )
        path = write_manifest(args.queue_init, manifest)
    except SpecificationError as exc:
        raise _sweep_error(str(exc)) from None
    print(
        f"Queue manifest: {len(grid)} points in {shards} shards "
        f"({manifest.fingerprint}) -> {path}"
    )
    print(
        f"  lease TTL {manifest.lease_ttl:g}s, max attempts "
        f"{manifest.max_attempts}; start workers with "
        f"`repro-gps sweep --queue {path}`"
    )
    return 0


def _cmd_sweep_queue(args: argparse.Namespace) -> int:
    """The --queue path: run one worker until nothing is claimable."""
    overridden = [
        "--" + name.replace("_", "-")
        for name, default in _GRID_AXIS_DEFAULTS.items()
        if getattr(args, name) != default
    ]
    if overridden:
        raise _sweep_error(
            "--queue rebuilds the grid from the manifest; drop "
            + ", ".join(overridden)
        )
    if args.shards is not None or args.shard_index is not None:
        raise _sweep_error(
            "--queue takes the partition geometry from the manifest; "
            "drop --shards/--shard-index"
        )
    if args.resume:
        raise _sweep_error(
            "the queue always skips shards with valid artifacts; "
            "--resume is implied by --queue"
        )
    if args.csv:
        raise _sweep_error(
            "a queue worker writes shard artifacts, not a report; "
            "gather the shard directory for --csv"
        )
    if args.lease_ttl is not None or args.max_attempts is not None:
        raise _sweep_error(
            "--lease-ttl/--max-attempts are set at --queue-init time; "
            "the manifest already records the queue policy"
        )
    if args.max_rows_in_memory is not None or args.spill_dir is not None:
        raise _sweep_error(
            "a queue worker writes shard artifacts, not a report; "
            "--max-rows-in-memory/--spill-dir apply where the report "
            "is produced (sweep --merge or gather)"
        )
    try:
        manifest = read_manifest(args.queue)
        grid = _grid_from_spec(
            manifest.grid_spec, source=f"queue manifest {args.queue}"
        )
        # The worker's own points run through the resolved engine;
        # the sharded engine would re-partition what the queue already
        # partitioned, so it degrades to its inner engine (exactly as
        # in the --shard-index path).
        executor = resolve_executor(args.engine, args.jobs, manifest.shards)
    except SpecificationError as exc:
        raise _sweep_error(str(exc)) from None
    inner = (
        executor.inner
        if isinstance(executor, ShardedExecutor)
        else executor
    )

    def on_event(kind: str, shard_index: int, detail: str) -> None:
        print(f"shard {shard_index}/{manifest.shards} {kind}: {detail}")

    try:
        report = run_gps_queue_worker(
            args.queue, grid, executor=inner, on_event=on_event
        )
    except SpecificationError as exc:
        raise _sweep_error(str(exc)) from None
    print(
        f"Queue worker done: {len(report.evaluated)} evaluated, "
        f"{len(report.skipped)} skipped, "
        f"{len(report.failures)} failed attempts"
    )
    if report.exhausted:
        exhausted = ", ".join(str(index) for index in report.exhausted)
        print(
            f"repro-gps sweep: shards exhausted after "
            f"{manifest.max_attempts} attempts: {exhausted}",
            file=sys.stderr,
        )
        return 1
    if report.outstanding:
        outstanding = ", ".join(
            str(index) for index in report.outstanding
        )
        print(
            f"  outstanding shards (leased or retrying elsewhere): "
            f"{outstanding}"
        )
    else:
        print("  queue drained: every shard artifact is in place")
    return 0


def _cmd_sweep_merge(args: argparse.Namespace) -> int:
    """The --merge path: reassemble shard artifacts into one report."""
    if args.queue_init is not None or args.queue is not None:
        raise _sweep_error(
            "--merge combines finished artifacts; drop "
            "--queue-init/--queue"
        )
    if args.lease_ttl is not None or args.max_attempts is not None:
        raise _sweep_error(
            "--lease-ttl/--max-attempts set the queue policy; they "
            "need --queue-init"
        )
    if args.shards is not None or args.shard_index is not None:
        raise _sweep_error(
            "--merge combines existing shard artifacts; it cannot be "
            "mixed with --shards/--shard-index"
        )
    if args.resume:
        raise _sweep_error(
            "--resume skips an already-evaluated shard run; it does "
            "not apply to --merge"
        )
    overridden = [
        "--" + name.replace("_", "-")
        for name, default in _GRID_AXIS_DEFAULTS.items()
        if getattr(args, name) != default
    ]
    if overridden:
        raise _sweep_error(
            "--merge reads the grid from the shard artifacts; drop "
            + ", ".join(overridden)
        )
    if args.engine is not None or args.jobs is not None:
        # Merging evaluates nothing, so an engine choice here is a
        # misunderstanding worth surfacing, not ignoring.
        raise _sweep_error(
            "--merge does not evaluate anything; drop --engine/--jobs"
        )
    max_rows = _resolve_max_rows(args, _sweep_error)
    if args.spill_dir is not None and max_rows is None:
        raise _sweep_error(
            f"--spill-dir needs a row budget; give "
            f"--max-rows-in-memory (or ${MAX_ROWS_ENV})"
        )
    try:
        paths = find_shard_artifacts(args.merge)
        if not paths:
            raise _sweep_error(
                f"no shard artifacts (shard-*.json) in {args.merge}"
            )
        if max_rows is not None:
            # Out-of-core merge: spill to a chunked frame store and
            # stream it out — byte-identical stdout, bounded memory.
            first = read_shard_artifact(paths[0])
            identity = {
                "fingerprint": first.fingerprint,
                "order_digest": first.order_digest,
                "total_points": first.total_points,
            }
            del first
            if args.spill_dir is not None:
                store = _reuse_or_create_store(
                    args.spill_dir,
                    **identity,
                    build=lambda directory: merge_artifacts_to_store(
                        paths, directory, max_rows
                    ),
                )
                _print_store_report(store, None, args)
            else:
                with tempfile.TemporaryDirectory(
                    prefix="repro-spill-"
                ) as scratch:
                    store = merge_artifacts_to_store(
                        paths, Path(scratch) / "store", max_rows
                    )
                    _print_store_report(store, None, args)
            return 0
        report = merge_shard_artifacts(paths)
    except SpecificationError as exc:
        raise _sweep_error(str(exc)) from None
    # Every grid point has exactly one winning row.
    n_points = int(report.frame.column("is_winner").sum())
    _print_sweep_report(report, n_points, args)
    return 0


def _print_adaptive_summary(report, args) -> None:
    """Render the per-pass adaptive counters.

    Chatter in CSV mode (stdout stays pure rows), part of the report in
    table mode — the counters are what make the evaluation-savings
    claim observable, so they always print somewhere.
    """
    out = sys.stderr if args.csv else sys.stdout
    status = ["stable front" if report.stable else "front not converged"]
    if report.budget_exhausted:
        status.append("budget exhausted")
    print(
        f"Adaptive sweep: {report.total_evaluations} of "
        f"{report.grid_points} grid points evaluated "
        f"({report.savings:.1f}x fewer), " + ", ".join(status),
        file=out,
    )
    for record in report.passes:
        print(
            f"  pass {record.index}: {record.evaluated}/"
            f"{record.proposed} proposed points evaluated "
            f"({record.cumulative_evaluations} cumulative), "
            f"front {record.front_size} (+{record.front_added}/"
            f"-{record.front_removed}), cache {record.cache_hits}h/"
            f"{record.cache_misses}m",
            file=out,
        )


def _cmd_sweep_adaptive(
    args: argparse.Namespace, grid: SweepGrid, executor
) -> int:
    """The --adaptive arm of the sweep subcommand.

    Runs the coarse → zoom driver and renders the merged canonical
    frame through the same table/CSV/store renderers as an exhaustive
    sweep — the rows are byte-identical to the exhaustive rows of the
    evaluated points, so downstream CSV consumers need no changes.
    """
    refine_margin = (
        args.refine_margin if args.refine_margin is not None else 0.0
    )
    coarse = args.coarse if args.coarse is not None else 4
    max_rows = _resolve_max_rows(args, _sweep_error)
    if args.spill_dir is not None and max_rows is None:
        raise _sweep_error(
            f"--spill-dir needs a row budget; give "
            f"--max-rows-in-memory (or ${MAX_ROWS_ENV})"
        )
    if args.spill_dir is not None and (
        Path(args.spill_dir) / STORE_MANIFEST_NAME
    ).exists():
        # The exhaustive spill can verify reuse against the grid
        # identity; an adaptive run cannot — which points were
        # evaluated depends on the refinement itself.
        raise _sweep_error(
            f"spill directory {args.spill_dir} already holds a frame "
            f"store; an adaptive run cannot verify reuse (the "
            f"evaluated subgrid depends on the refinement) — remove "
            f"it or pick another --spill-dir"
        )
    try:
        if max_rows is not None:
            if args.spill_dir is not None:
                store, report = spill_adaptive_gps_sweep(
                    grid,
                    Path(args.spill_dir),
                    max_rows,
                    executor=executor,
                    passes=args.passes,
                    budget=args.budget,
                    refine_margin=refine_margin,
                    coarse=coarse,
                )
                _print_adaptive_summary(report, args)
                _print_store_report(
                    store, report.total_evaluations, args
                )
            else:
                with tempfile.TemporaryDirectory(
                    prefix="repro-spill-"
                ) as scratch:
                    store, report = spill_adaptive_gps_sweep(
                        grid,
                        Path(scratch) / "store",
                        max_rows,
                        executor=executor,
                        passes=args.passes,
                        budget=args.budget,
                        refine_margin=refine_margin,
                        coarse=coarse,
                    )
                    _print_adaptive_summary(report, args)
                    _print_store_report(
                        store, report.total_evaluations, args
                    )
            return 0
        report = run_adaptive_gps_sweep(
            grid,
            executor=executor,
            passes=args.passes,
            budget=args.budget,
            refine_margin=refine_margin,
            coarse=coarse,
        )
    except SpecificationError as exc:
        raise _sweep_error(str(exc)) from None
    _print_adaptive_summary(report, args)
    _print_sweep_report(report.report, report.total_evaluations, args)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.fill is None:
        return _cmd_sweep_resolved(args)
    # --fill wins over $REPRO_SWEEP_BATCH for this invocation only:
    # the env var is set for the duration of the sweep (it reaches
    # process-engine workers through the inherited environment) and
    # restored afterwards.
    previous = os.environ.get(BATCH_FILL_ENV)
    os.environ[BATCH_FILL_ENV] = (
        "1" if args.fill == "batch" else "0"
    )
    try:
        return _cmd_sweep_resolved(args)
    finally:
        if previous is None:
            os.environ.pop(BATCH_FILL_ENV, None)
        else:
            os.environ[BATCH_FILL_ENV] = previous


def _cmd_sweep_resolved(args: argparse.Namespace) -> int:
    if not args.adaptive:
        for value, flag in (
            (args.passes, "--passes"),
            (args.budget, "--budget"),
            (args.refine_margin, "--refine-margin"),
            (args.coarse, "--coarse"),
        ):
            if value is not None:
                raise _sweep_error(
                    f"{flag} tunes the adaptive driver; it needs "
                    f"--adaptive"
                )
    elif (
        args.merge is not None
        or args.queue_init is not None
        or args.queue is not None
    ):
        raise _sweep_error(
            "--adaptive runs a fresh refinement sweep; it contradicts "
            "--merge/--queue-init/--queue, which replay or coordinate "
            "exhaustive-grid artifacts"
        )
    if args.merge is not None:
        return _cmd_sweep_merge(args)
    if args.queue_init is not None:
        return _cmd_sweep_queue_init(args)
    if args.queue is not None:
        return _cmd_sweep_queue(args)
    if args.lease_ttl is not None or args.max_attempts is not None:
        raise _sweep_error(
            "--lease-ttl/--max-attempts set the queue policy; they "
            "need --queue-init"
        )

    grid = SweepGrid(
        volumes=args.volumes,
        substrates=args.substrates,
        processes=args.processes,
        tolerances=args.tolerances,
        q_models=args.q_models,
        nres=args.nres,
        fom_weights=args.fom_weights,
    )
    # Explicit flags win per argument; unset ones fall back to the
    # REPRO_SWEEP_ENGINE / REPRO_SWEEP_JOBS / REPRO_SWEEP_SHARDS
    # environment defaults.  A bad engine name or worker count —
    # from either source — is a clean exit 2, not a traceback.
    try:
        # Validate the batch-fill switch up front so a bad
        # $REPRO_SWEEP_BATCH exits 2 like every other bad env default.
        batch_fill_enabled()
        executor = resolve_executor(args.engine, args.jobs, args.shards)
        # The documented default for --shards is $REPRO_SWEEP_SHARDS;
        # resolve it once so every path below honours it.
        shards = (
            args.shards if args.shards is not None else shards_from_env()
        )
    except SpecificationError as exc:
        raise _sweep_error(str(exc)) from None

    if args.resume and args.shard_index is None:
        raise _sweep_error(
            "--resume needs a shard run to resume; give "
            "--shard-index (and --shards)"
        )

    if args.adaptive and args.shard_index is not None:
        raise _sweep_error(
            "--adaptive proposes its own subgrids; cross-host shard "
            "artifacts (--shard-index) cover the exhaustive grid"
        )

    if args.shard_index is not None:
        # Cross-host mode: evaluate one shard, write its artifact.
        if args.max_rows_in_memory is not None or args.spill_dir is not None:
            raise _sweep_error(
                "a shard run writes its artifact, not a report; "
                "--max-rows-in-memory/--spill-dir apply where the "
                "report is produced (sweep --merge or gather)"
            )
        if shards is None:
            raise _sweep_error(
                f"--shard-index requires --shards (or ${SHARDS_ENV})"
            )
        if args.csv:
            raise _sweep_error(
                "--csv applies to full reports; a shard run only "
                "writes its artifact (merge the shards, then --csv)"
            )
        artifact_path = Path(args.shard_dir) / shard_filename(
            shards, args.shard_index
        )
        if args.resume:
            fingerprint = _resumable_artifact(
                artifact_path, grid, shards, args.shard_index
            )
            if fingerprint is not None:
                print(
                    f"Shard {args.shard_index}/{shards}: valid "
                    f"artifact for this grid ({fingerprint}) already "
                    f"at {artifact_path}, skipping re-evaluation"
                )
                return 0
        # The shard's own points run through the resolved engine —
        # unless that engine is the sharded one (the partitioning is
        # already being done here), which falls back to serial.
        inner = (
            executor.inner
            if isinstance(executor, ShardedExecutor)
            else executor
        )
        try:
            # Shard geometry (positive count, index in range) is
            # validated by the sharding layer itself.
            artifact = run_gps_shard(
                grid,
                shards=shards,
                shard_index=args.shard_index,
                executor=inner,
            )
        except SpecificationError as exc:
            raise _sweep_error(str(exc)) from None
        path = write_shard_artifact(artifact_path, artifact)
        print(
            f"Shard {args.shard_index}/{shards}: "
            f"{len(artifact.indices)} of {artifact.total_points} "
            f"points ({artifact.fingerprint}) -> {path}"
        )
        if args.cache_stats:
            print(
                "cache: "
                + " ".join(
                    f"{name}={table['hits']}h/{table['misses']}m"
                    for name, table in artifact.cache_state[
                        "tables"
                    ].items()
                )
            )
        return 0

    if shards is not None and not isinstance(executor, ShardedExecutor):
        # --shards (or its env default) without --shard-index: shard
        # in-process, routing each shard through whichever engine was
        # selected.
        try:
            executor = ShardedExecutor(shards, inner=executor)
        except SpecificationError as exc:
            raise _sweep_error(str(exc)) from None

    if args.adaptive:
        return _cmd_sweep_adaptive(args, grid, executor)

    max_rows = _resolve_max_rows(args, _sweep_error)
    if args.spill_dir is not None and max_rows is None:
        raise _sweep_error(
            f"--spill-dir needs a row budget; give "
            f"--max-rows-in-memory (or ${MAX_ROWS_ENV})"
        )
    if max_rows is not None:
        # Out-of-core mode: spill completed rows to a chunked frame
        # store as the sweep streams, then render from the store —
        # stdout is byte-identical to the in-RAM path below.
        points = grid.points()
        identity = {
            "fingerprint": grid_fingerprint(points),
            "order_digest": grid_order_digest(points),
            "total_points": len(points),
        }
        try:
            if args.spill_dir is not None:
                store = _reuse_or_create_store(
                    args.spill_dir,
                    **identity,
                    build=lambda directory: spill_gps_sweep(
                        grid, directory, max_rows, executor=executor
                    ),
                )
                _print_store_report(store, len(grid), args)
            else:
                with tempfile.TemporaryDirectory(
                    prefix="repro-spill-"
                ) as scratch:
                    store = spill_gps_sweep(
                        grid,
                        Path(scratch) / "store",
                        max_rows,
                        executor=executor,
                    )
                    _print_store_report(store, len(grid), args)
        except SpecificationError as exc:
            raise _sweep_error(str(exc)) from None
        return 0

    report = run_gps_sweep(grid, executor=executor)
    _print_sweep_report(report, len(grid), args)
    return 0


def _gather_error(message: str) -> "SystemExit":
    """Abort the gather subcommand with argparse's exit contract."""
    print(f"repro-gps gather: error: {message}", file=sys.stderr)
    return SystemExit(2)


def _cmd_gather(args: argparse.Namespace) -> int:
    """Merge a shard directory — one-shot, or watching workers live.

    Exit codes separate *asking wrong* from *not done yet*: bad flag
    combinations or an unreadable manifest exit 2 (usage), while an
    incomplete directory, a timeout or a rejected artifact exit 1
    with a one-line reason — the right signal for a supervisor
    restarting the watch.
    """
    if not args.watch:
        if args.poll is not None:
            raise _gather_error(
                "--poll paces the watch loop; it needs --watch"
            )
        if args.timeout is not None:
            raise _gather_error(
                "--timeout bounds the watch loop; it needs --watch"
            )
    elif args.max_rows_in_memory is not None or args.spill_dir is not None:
        raise _gather_error(
            "--watch merges incrementally in memory; "
            "--max-rows-in-memory/--spill-dir need the one-shot gather"
        )
    max_rows = None
    if not args.watch:
        max_rows = _resolve_max_rows(args, _gather_error)
        if args.spill_dir is not None and max_rows is None:
            raise _gather_error(
                f"--spill-dir needs a row budget; give "
                f"--max-rows-in-memory (or ${MAX_ROWS_ENV})"
            )
    expected = None
    if args.manifest is not None:
        try:
            expected = read_manifest(args.manifest)
        except SpecificationError as exc:
            raise _gather_error(str(exc)) from None

    last_progress: list = [None]

    def on_snapshot(snapshot) -> None:
        state = (
            snapshot.covered_points,
            snapshot.shards_seen,
            snapshot.pending,
            snapshot.rejected,
        )
        if state == last_progress[0]:
            return
        last_progress[0] = state
        total_points = (
            snapshot.total_points if snapshot.total_points else "?"
        )
        total_shards = (
            snapshot.total_shards if snapshot.total_shards else "?"
        )
        line = (
            f"gather: {snapshot.covered_points}/{total_points} points, "
            f"shards {len(snapshot.shards_seen)}/{total_shards}"
        )
        if snapshot.pending:
            line += f", {len(snapshot.pending)} in flight"
        for name, reason in snapshot.rejected:
            line += f"; rejected {name}: {reason}"
        # Progress is chatter, not output: stdout stays pure for the
        # final table/CSV.
        print(line, file=sys.stderr)

    if max_rows is not None:
        return _gather_spilled(args, expected, max_rows)

    try:
        if args.watch:
            report = watch_directory(
                args.directory,
                expected=expected,
                poll=args.poll if args.poll is not None else 0.5,
                timeout=args.timeout,
                on_snapshot=on_snapshot,
            )
        else:
            report = gather_directory(args.directory, expected=expected)
    except GatherError as exc:
        print(f"repro-gps gather: {exc}", file=sys.stderr)
        return 1
    # Every grid point has exactly one winning row.
    n_points = int(report.frame.column("is_winner").sum())
    _print_sweep_report(report, n_points, args)
    return 0


def _gather_spilled(args: argparse.Namespace, expected, max_rows: int) -> int:
    """The out-of-core gather: merge the directory through a store.

    Exit codes keep the gather contract: a directory that is not done
    yet (missing shards, rejected artifacts) exits 1, while a broken
    spill store — wrong grid, corrupt chunk — is *asking wrong* and
    exits 2.  Stdout is byte-identical to the in-RAM gather.
    """
    try:
        if args.spill_dir is not None:
            if expected is not None:
                identity = {
                    "fingerprint": expected.fingerprint,
                    "order_digest": expected.order_digest,
                    "total_points": expected.total_points,
                }
            else:
                paths = find_shard_artifacts(args.directory)
                if not paths:
                    raise GatherError(
                        f"no shard artifacts (shard-*.json) in "
                        f"{args.directory}"
                    )
                first = read_shard_artifact(paths[0])
                identity = {
                    "fingerprint": first.fingerprint,
                    "order_digest": first.order_digest,
                    "total_points": first.total_points,
                }
                del first
            store = _reuse_or_create_store(
                args.spill_dir,
                **identity,
                build=lambda directory: gather_directory_to_store(
                    args.directory, directory, max_rows, expected=expected
                ),
            )
            _print_store_report(store, None, args)
        else:
            with tempfile.TemporaryDirectory(
                prefix="repro-spill-"
            ) as scratch:
                store = gather_directory_to_store(
                    args.directory,
                    Path(scratch) / "store",
                    max_rows,
                    expected=expected,
                )
                _print_store_report(store, None, args)
    except GatherError as exc:
        print(f"repro-gps gather: {exc}", file=sys.stderr)
        return 1
    except ShardMergeError as exc:
        # Listing/reading the shard directory fails the same way it
        # would in the in-RAM gather: not done yet, exit 1.
        print(f"repro-gps gather: {exc}", file=sys.stderr)
        return 1
    except SpecificationError as exc:
        raise _gather_error(str(exc)) from None
    return 0


def _warehouse_error(message: str) -> "SystemExit":
    """Abort a warehouse subcommand with argparse's exit contract.

    Bad asks — contradictory flags, a missing manifest, a fingerprint
    that does not match the warehouse — exit 2 with a one-line
    message, never a traceback.
    """
    print(f"repro-gps warehouse: error: {message}", file=sys.stderr)
    return SystemExit(2)


def _check_warehouse_fingerprint(directory, pin: Optional[str]):
    """The warehouse manifest, with an optional ``--fingerprint`` pin."""
    try:
        manifest = read_warehouse_manifest(directory)
    except SpecificationError as exc:
        raise _warehouse_error(str(exc)) from None
    if pin is not None and manifest.fingerprint != pin:
        raise _warehouse_error(
            f"warehouse {directory} holds grid fingerprint "
            f"{manifest.fingerprint}, not {pin}; point at the right "
            f"warehouse or drop --fingerprint"
        )
    return manifest


def _cmd_warehouse_build(args: argparse.Namespace) -> int:
    """Materialise a sweep into frame files (fresh run or shard ingest)."""
    if args.from_shards is not None:
        overridden = [
            "--" + name.replace("_", "-")
            for name, default in _GRID_AXIS_DEFAULTS.items()
            if getattr(args, name) != default
        ]
        if overridden:
            raise _warehouse_error(
                "--from-shards reads the grid from the shard "
                "artifacts; drop " + ", ".join(overridden)
            )
        if args.engine is not None or args.jobs is not None:
            raise _warehouse_error(
                "--from-shards ingests finished artifacts without "
                "evaluating anything; drop --engine/--jobs"
            )
        try:
            manifest, appended, skipped = ingest_shard_directory(
                args.directory, args.from_shards
            )
        except SpecificationError as exc:
            raise _warehouse_error(str(exc)) from None
        for name in appended:
            print(f"appended {name}")
        for name in skipped:
            print(f"skipped {name} (already covered)")
    else:
        grid = SweepGrid(
            volumes=args.volumes,
            substrates=args.substrates,
            processes=args.processes,
            tolerances=args.tolerances,
            q_models=args.q_models,
            nres=args.nres,
            fom_weights=args.fom_weights,
        )
        try:
            executor = resolve_executor(args.engine, args.jobs, None)
            manifest = build_gps_warehouse(
                args.directory,
                grid,
                executor=executor,
                grid_spec=_grid_spec_from_args(args),
            )
        except SpecificationError as exc:
            raise _warehouse_error(str(exc)) from None
    rows = sum(entry.rows for entry in manifest.frames)
    state = "complete" if manifest.complete else "partial"
    print(
        f"warehouse {args.directory}: fingerprint "
        f"{manifest.fingerprint}, revision {manifest.revision}, "
        f"{manifest.covered_points}/{manifest.total_points} points, "
        f"{rows} rows in {len(manifest.frames)} frame files ({state})"
    )
    return 0


def _cmd_warehouse_serve(args: argparse.Namespace) -> int:
    """Put a warehouse behind ``POST /query`` until interrupted."""
    _check_warehouse_fingerprint(args.directory, args.fingerprint)
    try:
        server = serve_warehouse(
            args.directory, host=args.host, port=args.port
        )
    except SpecificationError as exc:
        raise _warehouse_error(str(exc)) from None
    except OSError as exc:
        raise _warehouse_error(
            f"cannot bind {args.host}:{args.port}: {exc}"
        ) from None
    host, port = server.server_address[:2]
    print(
        f"serving warehouse {args.directory} at http://{host}:{port} "
        f"(POST /query, GET /manifest, GET /health; Ctrl-C stops)",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_warehouse_query(args: argparse.Namespace) -> int:
    """Answer one decision query and print the canonical JSON response.

    The same bytes the HTTP server would send for the equivalent
    ``POST /query`` — scripts can mix both surfaces and diff freely.
    """
    _check_warehouse_fingerprint(args.directory, args.fingerprint)
    request: dict = {"kind": args.kind}
    where: dict = {}
    for flag, axis in (
        ("volume", "volume"),
        ("substrate", "substrate"),
        ("process", "process"),
        ("tolerance", "tolerance"),
        ("q_model", "q_model"),
        ("nre", "nre"),
        ("weights_label", "weights"),
        ("candidate", "candidate"),
    ):
        value = getattr(args, flag)
        if value is not None:
            where[axis] = value
    if where:
        request["where"] = where
    if args.query_fom_weights is not None:
        request["fom_weights"] = args.query_fom_weights
    if args.axis is not None:
        request["axis"] = args.axis
    try:
        payload = QueryService(args.directory).execute(request)
    except QueryError as exc:
        raise _warehouse_error(str(exc)) from None
    except SpecificationError as exc:
        raise _warehouse_error(str(exc)) from None
    sys.stdout.write(response_bytes(payload).decode("utf-8"))
    return 0


def _add_grid_axis_arguments(parser: argparse.ArgumentParser) -> None:
    """The seven sweep-grid axis flags, shared verbatim by ``sweep``
    and ``warehouse build`` (same tokens, same defaults, same grid)."""
    parser.add_argument(
        "--volumes",
        type=_volume_values,
        default=(10_000.0,),
        help="comma-separated production volumes, e.g. 1e3,1e4,1e5",
    )
    parser.add_argument(
        "--substrates",
        type=lambda raw: _axis_values(raw, SUBSTRATE_RULES, "substrate"),
        default=(None,),
        help=(
            "comma-separated MCM substrate rules: paper, "
            + ", ".join(sorted(SUBSTRATE_RULES))
        ),
    )
    parser.add_argument(
        "--processes",
        type=lambda raw: _axis_values(raw, THIN_FILM_PROCESSES, "process"),
        default=(None,),
        help=(
            "comma-separated thin-film processes: paper, "
            + ", ".join(sorted(THIN_FILM_PROCESSES))
        ),
    )
    parser.add_argument(
        "--tolerances",
        type=lambda raw: _axis_values(raw, TOLERANCE_CLASSES, "tolerance"),
        default=(None,),
        help=(
            "comma-separated tolerance classes: paper, "
            + ", ".join(sorted(TOLERANCE_CLASSES))
        ),
    )
    parser.add_argument(
        "--q-models",
        type=_q_model_values,
        default=(None,),
        help=(
            "comma-separated technology Q models: paper, tan=<value>, "
            + ", ".join(sorted(Q_MODEL_SCENARIOS))
        ),
    )
    parser.add_argument(
        "--nres",
        type=lambda raw: _axis_values(raw, NRE_SCENARIOS, "NRE scenario"),
        default=(None,),
        help=(
            "comma-separated NRE scenarios: paper, "
            + ", ".join(sorted(NRE_SCENARIOS))
        ),
    )
    parser.add_argument(
        "--fom-weights",
        type=_fom_weight_values,
        default=(None,),
        help=(
            "comma-separated FoM weight vectors as perf:size:cost "
            "(e.g. 1:1:1,2:1:0.5); paper = the plain product"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-gps`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-gps",
        description=(
            "Reproduction of 'Assessing the Cost Effectiveness of "
            "Integrated Passives' (DATE 2000)"
        ),
    )
    sub = parser.add_subparsers(dest="command")

    study = sub.add_parser("study", help="run the full trade-off study")
    study.add_argument(
        "--volume",
        type=float,
        default=10_000.0,
        help="production volume for NRE amortisation",
    )
    study.set_defaults(func=_cmd_study)

    flow = sub.add_parser("flow", help="render a build-up's MOE flow")
    flow.add_argument(
        "implementation", type=int, choices=(1, 2, 3, 4)
    )
    flow.set_defaults(func=_cmd_flow)

    compare = sub.add_parser(
        "compare", help="paper-vs-measured for all published numbers"
    )
    compare.set_defaults(func=_cmd_compare)

    calibrate = sub.add_parser(
        "calibrate", help="re-run the chip-cost calibration"
    )
    calibrate.add_argument(
        "--bare-discount",
        type=float,
        default=0.95,
        help="bare-die cost as a fraction of the packaged part",
    )
    calibrate.set_defaults(func=_cmd_calibrate)

    sweep = sub.add_parser(
        "sweep",
        help="design-space sweep (volume x substrate x process x tolerance)",
    )
    _add_grid_axis_arguments(sweep)
    sweep.add_argument(
        "--csv",
        action="store_true",
        help="emit the Pareto-ready rows as CSV instead of a table",
    )
    sweep.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default=None,
        help=(
            "execution engine (identical rows either way); defaults to "
            "$REPRO_SWEEP_ENGINE or serial"
        ),
    )
    sweep.add_argument(
        "--fill",
        choices=("batch", "scalar"),
        default=None,
        help=(
            "per-cell fill strategy: 'batch' walks each production "
            "flow once per volume family, 'scalar' keeps the "
            "per-point reference path (identical rows either way); "
            "defaults to $REPRO_SWEEP_BATCH or batch"
        ),
    )
    sweep.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help=(
            "worker processes for --engine process / concurrent tasks "
            "for --engine async (default: CPU count or "
            "$REPRO_SWEEP_JOBS)"
        ),
    )
    sweep.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        help=(
            "partition the grid into K content-addressed shards; "
            "alone it runs all shards in-process (the sharded "
            "engine), with --shard-index it runs exactly one "
            "(default: $REPRO_SWEEP_SHARDS)"
        ),
    )
    sweep.add_argument(
        "--shard-index",
        type=_nonnegative_int,
        default=None,
        help=(
            "cross-host mode: evaluate only shard I of --shards and "
            "write a portable artifact to --shard-dir"
        ),
    )
    sweep.add_argument(
        "--shard-dir",
        default=".",
        help=(
            "directory shard artifacts are written to "
            "(default: current directory)"
        ),
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help=(
            "with --shard-index: if --shard-dir already holds a valid "
            "artifact for this exact grid and shard (fingerprint "
            "match), skip re-evaluation and exit 0"
        ),
    )
    sweep.add_argument(
        "--merge",
        default=None,
        metavar="DIR",
        help=(
            "merge every shard-*.json artifact in DIR back into the "
            "canonical sweep report (rows byte-identical to a serial "
            "in-process sweep)"
        ),
    )
    sweep.add_argument(
        "--queue-init",
        default=None,
        metavar="MANIFEST",
        help=(
            "write a work-queue manifest for this grid cut into "
            "--shards shards; workers then run `sweep --queue "
            "MANIFEST` and coordinate through the manifest's directory"
        ),
    )
    sweep.add_argument(
        "--queue",
        default=None,
        metavar="MANIFEST",
        help=(
            "run a queue worker: claim, evaluate and atomically "
            "publish shards (skipping valid artifacts, retrying "
            "failures, stealing expired leases) until nothing is "
            "claimable; exits 1 if any shard exhausted its attempts"
        ),
    )
    sweep.add_argument(
        "--lease-ttl",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help=(
            "with --queue-init: seconds before a worker's shard lease "
            "expires and may be stolen (default 300)"
        ),
    )
    sweep.add_argument(
        "--max-attempts",
        type=_positive_int,
        default=None,
        help=(
            "with --queue-init: failed evaluations of one shard "
            "before the queue declares it exhausted (default 3)"
        ),
    )
    sweep.add_argument(
        "--cache-stats",
        action="store_true",
        help=(
            "print per-table EvaluationCache hits/misses, merged "
            "across workers"
        ),
    )
    sweep.add_argument(
        "--max-rows-in-memory",
        type=_positive_row_budget,
        default=None,
        metavar="N",
        help=(
            "out-of-core mode: spill result rows to a chunked frame "
            "store, never holding more than N of them in memory "
            "(output byte-identical to the in-RAM path; default: "
            "$REPRO_SWEEP_MAX_ROWS)"
        ),
    )
    sweep.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help=(
            "directory the out-of-core chunk store lives in (default: "
            "a temporary directory); a complete store already spilled "
            "there for this exact grid is re-read instead of "
            "re-evaluated — needs --max-rows-in-memory or "
            "$REPRO_SWEEP_MAX_ROWS"
        ),
    )
    sweep.add_argument(
        "--adaptive",
        action="store_true",
        help=(
            "adaptive refinement: evaluate a coarse subsample of the "
            "grid, then zoom the continuous axes (volume, tan=<x> Q "
            "models, FoM weight triples) around Pareto-front members "
            "only — typically >=10x fewer cell evaluations with the "
            "front byte-identical over the evaluated points"
        ),
    )
    sweep.add_argument(
        "--passes",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "with --adaptive: maximum refinement passes, the coarse "
            "pass included (default: run until the front is stable)"
        ),
    )
    sweep.add_argument(
        "--budget",
        type=_positive_int,
        default=None,
        metavar="K",
        help=(
            "with --adaptive: hard cap on total cell evaluations "
            "across all passes (a pass that would overrun is "
            "truncated in canonical order)"
        ),
    )
    sweep.add_argument(
        "--refine-margin",
        type=_nonnegative_float,
        default=None,
        metavar="X",
        help=(
            "with --adaptive: also refine around cells within this "
            "relative dominance margin of the front (0 = exact front "
            "members only, the default)"
        ),
    )
    sweep.add_argument(
        "--coarse",
        type=_coarse_rank_count,
        default=None,
        metavar="C",
        help=(
            "with --adaptive: values the coarse pass keeps per "
            "refinable axis, endpoints always included (default 4)"
        ),
    )
    sweep.set_defaults(func=_cmd_sweep)

    gather = sub.add_parser(
        "gather",
        help="merge shard artifacts into the canonical sweep report",
    )
    gather.add_argument(
        "directory",
        metavar="DIR",
        help="shard directory (where the queue workers publish)",
    )
    gather.add_argument(
        "--watch",
        action="store_true",
        help=(
            "poll DIR while workers are still filling it, merging "
            "each artifact as it lands (progress on stderr), until "
            "the sweep is fully gathered"
        ),
    )
    gather.add_argument(
        "--poll",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="with --watch: seconds between directory scans (default 0.5)",
    )
    gather.add_argument(
        "--timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help=(
            "with --watch: give up (exit 1, naming the missing "
            "points) after this many seconds"
        ),
    )
    gather.add_argument(
        "--manifest",
        default=None,
        metavar="MANIFEST",
        help=(
            "pin the expected grid and partition to a queue manifest "
            "(default: the first artifact seen becomes the reference)"
        ),
    )
    gather.add_argument(
        "--csv",
        action="store_true",
        help="emit the merged rows as CSV instead of a table",
    )
    gather.add_argument(
        "--cache-stats",
        action="store_true",
        help=(
            "print per-table EvaluationCache hits/misses, merged "
            "across workers"
        ),
    )
    gather.add_argument(
        "--max-rows-in-memory",
        type=_positive_row_budget,
        default=None,
        metavar="N",
        help=(
            "out-of-core mode: merge the artifacts through a chunked "
            "frame store, never holding more than one artifact plus N "
            "buffered rows (output byte-identical; default: "
            "$REPRO_SWEEP_MAX_ROWS; one-shot gather only)"
        ),
    )
    gather.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help=(
            "directory the out-of-core chunk store lives in (default: "
            "a temporary directory); a complete store already spilled "
            "there for this exact grid is re-read instead of "
            "re-merged — needs --max-rows-in-memory or "
            "$REPRO_SWEEP_MAX_ROWS"
        ),
    )
    gather.set_defaults(func=_cmd_gather)

    warehouse = sub.add_parser(
        "warehouse",
        help=(
            "materialise sweeps into a frame warehouse and answer "
            "decision queries in O(ms)"
        ),
    )
    warehouse_sub = warehouse.add_subparsers(
        dest="warehouse_command", required=True
    )

    build = warehouse_sub.add_parser(
        "build",
        help=(
            "run the sweep (or ingest shard artifacts) and publish "
            "content-addressed frame files plus a manifest"
        ),
    )
    build.add_argument(
        "directory",
        metavar="DIR",
        help="warehouse directory (created if missing)",
    )
    _add_grid_axis_arguments(build)
    build.add_argument(
        "--from-shards",
        default=None,
        metavar="SHARD_DIR",
        help=(
            "append every shard-*.json artifact in SHARD_DIR instead "
            "of evaluating; resumable — already-covered shards are "
            "skipped, new ones appended atomically"
        ),
    )
    build.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default=None,
        help=(
            "execution engine for a fresh build (identical frames "
            "either way); defaults to $REPRO_SWEEP_ENGINE or serial"
        ),
    )
    build.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help=(
            "worker processes / concurrent tasks for the chosen "
            "engine (default: CPU count or $REPRO_SWEEP_JOBS)"
        ),
    )
    build.set_defaults(func=_cmd_warehouse_build)

    serve = warehouse_sub.add_parser(
        "serve",
        help="serve a warehouse over HTTP (POST /query, stdlib only)",
    )
    serve.add_argument(
        "directory", metavar="DIR", help="warehouse directory"
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=_nonnegative_int,
        default=8527,
        help="bind port; 0 picks an ephemeral port (default 8527)",
    )
    serve.add_argument(
        "--fingerprint",
        default=None,
        help=(
            "refuse to serve unless the warehouse holds exactly this "
            "grid fingerprint"
        ),
    )
    serve.set_defaults(func=_cmd_warehouse_serve)

    query = warehouse_sub.add_parser(
        "query",
        help=(
            "answer one decision query and print the canonical JSON "
            "response (the HTTP server's exact bytes)"
        ),
    )
    query.add_argument(
        "directory", metavar="DIR", help="warehouse directory"
    )
    query.add_argument(
        "--kind",
        choices=QUERY_KINDS,
        required=True,
        help="what to ask the warehouse",
    )
    query.add_argument(
        "--fom-weights",
        dest="query_fom_weights",
        default=None,
        metavar="P:S:C",
        help=(
            "user FoM weight vector perf:size:cost (required for "
            "--kind rerank; optional re-rank for winners/best/"
            "sensitivity)"
        ),
    )
    query.add_argument(
        "--axis",
        choices=SENSITIVITY_AXES,
        default=None,
        help="with --kind sensitivity: the axis to slice along",
    )
    query.add_argument(
        "--volume",
        type=float,
        default=None,
        help="pin the volume axis (exact value, e.g. 1e4)",
    )
    query.add_argument(
        "--substrate", default=None, help="pin the substrate label"
    )
    query.add_argument(
        "--process", default=None, help="pin the process label"
    )
    query.add_argument(
        "--tolerance", default=None, help="pin the tolerance label"
    )
    query.add_argument(
        "--q-model", default=None, help="pin the Q-model label"
    )
    query.add_argument(
        "--nre", default=None, help="pin the NRE-scenario label"
    )
    query.add_argument(
        "--weights-label",
        default=None,
        help="pin the per-point FoM-weights label (e.g. paper)",
    )
    query.add_argument(
        "--candidate", default=None, help="pin the candidate name"
    )
    query.add_argument(
        "--fingerprint",
        default=None,
        help=(
            "refuse to answer unless the warehouse holds exactly this "
            "grid fingerprint"
        ),
    )
    query.set_defaults(func=_cmd_warehouse_query)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if not hasattr(args, "func"):
        args = parser.parse_args(["study"])
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
