"""Command-line interface: run the GPS case study from the shell.

Installed as ``repro-gps``.  Subcommands:

* ``study`` (default) — run the full trade-off study and print the
  Fig. 3/5/6 tables plus the recommendation;
* ``flow N`` — render the MOE production flow of build-up N (Fig. 4);
* ``compare`` — print paper-vs-measured for every published number;
* ``calibrate`` — re-run the confidential chip-cost calibration.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core.decision import full_report
from .cost.calibration import calibrate_chip_costs
from .cost.moe.builder import render_flow
from .gps.buildups import flow_for
from .gps.study import paper_comparison, run_gps_study


def _cmd_study(args: argparse.Namespace) -> int:
    result = run_gps_study(volume=args.volume)
    print(full_report(result))
    return 0


def _cmd_flow(args: argparse.Namespace) -> int:
    flow = flow_for(args.implementation)
    print(render_flow(flow))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    del args
    result = run_gps_study()
    comparison = paper_comparison(result)
    for metric, values in comparison.items():
        print(f"{metric}:")
        for implementation, (paper, measured) in values.items():
            print(
                f"  impl {implementation}: paper={paper:g} "
                f"measured={measured:.3g}"
            )
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    result = calibrate_chip_costs(bare_discount=args.bare_discount)
    print(
        f"RF chip:  packaged {result.rf_packaged:.1f}, "
        f"bare {result.rf_bare:.1f}"
    )
    print(
        f"DSP chip: packaged {result.dsp_packaged:.1f}, "
        f"bare {result.dsp_bare:.1f}"
    )
    for implementation, ratio in result.achieved_ratios.items():
        target = result.target_ratios[implementation]
        print(
            f"impl {implementation}: achieved {100 * ratio:.1f}% "
            f"(paper {100 * target:.1f}%)"
        )
    print(f"ordering preserved: {result.ordering_preserved}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-gps`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-gps",
        description=(
            "Reproduction of 'Assessing the Cost Effectiveness of "
            "Integrated Passives' (DATE 2000)"
        ),
    )
    sub = parser.add_subparsers(dest="command")

    study = sub.add_parser("study", help="run the full trade-off study")
    study.add_argument(
        "--volume",
        type=float,
        default=10_000.0,
        help="production volume for NRE amortisation",
    )
    study.set_defaults(func=_cmd_study)

    flow = sub.add_parser("flow", help="render a build-up's MOE flow")
    flow.add_argument(
        "implementation", type=int, choices=(1, 2, 3, 4)
    )
    flow.set_defaults(func=_cmd_flow)

    compare = sub.add_parser(
        "compare", help="paper-vs-measured for all published numbers"
    )
    compare.set_defaults(func=_cmd_compare)

    calibrate = sub.add_parser(
        "calibrate", help="re-run the chip-cost calibration"
    )
    calibrate.add_argument(
        "--bare-discount",
        type=float,
        default=0.95,
        help="bare-die cost as a fraction of the packaged part",
    )
    calibrate.set_defaults(func=_cmd_calibrate)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if not hasattr(args, "func"):
        args = parser.parse_args(["study"])
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
