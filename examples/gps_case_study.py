#!/usr/bin/env python3
"""The full GPS case study, step by step (paper §3-4).

Walks the five methodology steps explicitly, showing the intermediate
artefacts the paper discusses:

1. the build-ups and their bills of materials,
2. the filter-chain performance analysis (§4.1),
3. the area calculation (§4.2, Fig. 3),
4. the MOE cost analysis (§4.3, Figs. 4/5) including a Monte Carlo run,
5. the figure of merit and the decision (§4.4, Fig. 6).

Run:
    python examples/gps_case_study.py
"""

from repro.circuits.performance import assess_chain
from repro.cost.moe import evaluate, render_flow, simulate
from repro.gps import data
from repro.gps.bom import build_gps_bom, validate_against_paper
from repro.gps.buildups import area_for, flow_for
from repro.gps.filters_chain import technology_assignments
from repro.gps.study import paper_comparison, run_gps_study


def step1_buildups() -> None:
    print("=" * 70)
    print("Step 1 — viable build-up implementations")
    print("=" * 70)
    for i in (1, 2, 3, 4):
        print(f"  {i}: {data.IMPLEMENTATION_NAMES[i]}")
    bom = build_gps_bom()
    print(f"\nPassive BoM: {bom.total_count} discrete positions")
    for line in bom:
        req = line.requirement
        print(
            f"  {line.quantity:>3}x {req.name:<10} "
            f"({req.kind.name.lower()}, {req.role.value}) — {line.note}"
        )
    checks = validate_against_paper(bom)
    print(f"Aggregate checks vs the paper: {checks}")


def step2_performance() -> None:
    print("\n" + "=" * 70)
    print("Step 2 — performance vs specifications (§4.1)")
    print("=" * 70)
    for i in (1, 2, 3, 4):
        chain = assess_chain(technology_assignments(i))
        print(f"\n  build-up {i} ({data.IMPLEMENTATION_NAMES[i]}):")
        for result in chain.filters:
            status = "meets spec" if result.meets_spec else "VIOLATES spec"
            rejection = (
                f", rejection {result.rejection_db:.1f} dB"
                if result.rejection_db is not None
                else ""
            )
            print(
                f"    {result.spec.name:<22} IL "
                f"{result.insertion_loss_db:5.2f} dB "
                f"(spec {result.spec.max_insertion_loss_db:.1f} dB)"
                f"{rejection} -> {status}"
            )
        print(
            f"    chain score {chain.score:.2f} "
            f"(paper: {data.PAPER_PERFORMANCE[i]})"
        )


def step3_area() -> None:
    print("\n" + "=" * 70)
    print("Step 3 — area calculation (§4.2, Fig. 3)")
    print("=" * 70)
    reference = area_for(1).final_area_mm2
    for i in (1, 2, 3, 4):
        report = area_for(i)
        parts = ", ".join(
            f"{kind}: {total:.0f}"
            for kind, total in sorted(report.breakdown_mm2.items())
        )
        print(
            f"  build-up {i}: final {report.final_area_mm2:7.0f} mm^2 "
            f"({100 * report.final_area_mm2 / reference:5.1f} %, paper "
            f"{data.PAPER_AREA_PERCENT[i]:.0f} %)  [{parts}]"
        )


def step4_cost() -> None:
    print("\n" + "=" * 70)
    print("Step 4 — cost including test and yield (§4.3, Figs. 4/5)")
    print("=" * 70)
    print("\nGeneric MOE model of build-up 2 (Fig. 4):\n")
    print(render_flow(flow_for(2)))

    print("\nAnalytic evaluation (Eq. 1) and a Monte Carlo batch:")
    reference = evaluate(flow_for(1)).final_cost_per_shipped
    for i in (1, 2, 3, 4):
        flow = flow_for(i)
        analytic = evaluate(flow)
        sampled = simulate(flow, units=10_000, seed=42)
        print(
            f"  build-up {i}: final {analytic.final_cost_per_shipped:7.2f} "
            f"({100 * analytic.final_cost_per_shipped / reference:5.1f} %, "
            f"paper {data.PAPER_COST_PERCENT[i]:.1f} %)  "
            f"direct {analytic.direct_cost_per_unit:6.1f} "
            f"(chips {analytic.chip_cost_per_unit:6.1f})  "
            f"yield loss {analytic.yield_loss_per_shipped:5.1f}  "
            f"[MC: {sampled.final_cost_per_shipped:7.2f}, "
            f"{sampled.scrapped_units:.0f} scrapped]"
        )


def step5_decision() -> None:
    print("\n" + "=" * 70)
    print("Step 5 — the decision (§4.4, Fig. 6)")
    print("=" * 70)
    result = run_gps_study()
    comparison = paper_comparison(result)
    print(f"\n{'impl':>4} | {'perf':>10} | {'area %':>14} | "
          f"{'cost %':>14} | {'FoM':>12}")
    print("     |  paper/ours |   paper/ours   |   paper/ours   |  paper/ours")
    for i in (1, 2, 3, 4):
        perf = comparison["performance"][i]
        area = comparison["area"][i]
        cost = comparison["cost"][i]
        fom = comparison["fom"][i]
        print(
            f"{i:>4} | {perf[0]:4.2f}/{perf[1]:4.2f} | "
            f"{area[0]:6.1f}/{area[1]:6.1f} | "
            f"{cost[0]:6.1f}/{cost[1]:6.1f} | "
            f"{fom[0]:5.2f}/{fom[1]:5.2f}"
        )
    print(f"\nDecision: build {result.winner.assessment.name} "
          f"(the paper chose an adaptation of solution 4).")


def main() -> None:
    step1_buildups()
    step2_performance()
    step3_area()
    step4_cost()
    step5_decision()


if __name__ == "__main__":
    main()
