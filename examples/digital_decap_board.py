#!/usr/bin/env python3
"""A user-defined trade-off: a purely digital board.

The paper's introduction motivates integrated passives with digital
systems too: passives "can contribute up to 80% of the component count
in purely digital systems as pull-ups or decoupling capacitors".  This
example applies the methodology to exactly that scenario — an FPGA +
SDRAM board whose passives are 40 pull-ups, 12 termination resistors and
30 decoupling capacitors — comparing:

1. a plain PCB with everything SMD (reference),
2. a thin-film substrate integrating every passive,
3. a passives-optimized build chosen by the per-component selector
   (pull-ups/terminations integrate, decaps stay SMD).

Because the board is digital, performance is 1.0 for every build-up and
the decision is driven purely by size and cost — showing how the
optimizer avoids the paper's decap trap automatically.

Run:
    python examples/digital_decap_board.py
"""

from repro.area.footprint import Footprint, MountKind
from repro.area.substrate import SubstrateRule
from repro.core.decision import full_report
from repro.core.methodology import CandidateBuildUp, run_study
from repro.core.optimizer import optimize_passives
from repro.cost.moe.builder import FlowBuilder
from repro.cost.moe.nodes import CostTag
from repro.passives.component import (
    PassiveKind,
    PassiveRequirement,
    PassiveRole,
)
from repro.passives.smd import get_case
from repro.passives.thin_film import SUMMIT_PROCESS, realize_integrated

# The digital board's chips (packaged in all build-ups).
CHIPS = [
    ("FPGA", 400.0, 25.0, 0.999),
    ("SDRAM", 150.0, 8.0, 0.999),
    ("config flash", 50.0, 2.0, 0.999),
]

PCB_RULE = SubstrateRule(name="FR4", packing_factor=1.1,
                         edge_clearance_mm=1.0)
THIN_FILM_RULE = SubstrateRule(name="thin-film PCB", packing_factor=1.1,
                               edge_clearance_mm=1.0)
PCB_COST_PER_CM2 = 0.1
THIN_FILM_COST_PER_CM2 = 0.9


def passive_requirements() -> list[PassiveRequirement]:
    """40 pull-ups, 12 terminations, 30 decaps."""
    requirements: list[PassiveRequirement] = []
    requirements += [
        PassiveRequirement(
            PassiveKind.RESISTOR, 4.7e3, 0.05, PassiveRole.PULL_UP,
            name=f"Rpu{i}",
        )
        for i in range(40)
    ]
    requirements += [
        PassiveRequirement(
            PassiveKind.RESISTOR, 50.0, 0.02, PassiveRole.GENERIC,
            name=f"Rterm{i}",
        )
        for i in range(12)
    ]
    requirements += [
        PassiveRequirement(
            PassiveKind.CAPACITOR, 100e-9, 0.2, PassiveRole.DECOUPLING,
            name=f"Cdec{i}",
        )
        for i in range(30)
    ]
    return requirements


def chip_footprints() -> list[Footprint]:
    return [
        Footprint(name, area, MountKind.PACKAGED)
        for name, area, _, _ in CHIPS
    ]


def flow_factory(substrate_cost_per_cm2, smd_parts, rule_name):
    """Common production-flow shape for all three build-ups."""

    def factory(area_cm2: float):
        builder = FlowBuilder(rule_name)
        builder.carrier(
            rule_name, substrate_cost_per_cm2 * area_cm2, 0.995
        )
        for name, _, cost, yield_ in CHIPS:
            builder.attach(
                name, 1, cost, yield_, 0.10, 0.99,
                component_tag=CostTag.CHIP,
            )
        if smd_parts:
            builder.attach(
                "SMD passives",
                quantity=smd_parts,
                component_cost=0.015,
                component_yield=1.0,
                attach_cost=0.01,
                attach_yield=0.9999,
                component_tag=CostTag.PASSIVE,
            )
        builder.test("in-circuit test", 3.0, 0.98)
        return builder.build()

    return factory


def build_candidates() -> list[CandidateBuildUp]:
    requirements = passive_requirements()
    smd_area = get_case("0402").footprint_area_mm2
    decap_area = get_case("0603").footprint_area_mm2

    # 1: everything SMD on FR4.
    all_smd = chip_footprints()
    for req in requirements:
        area = decap_area if req.role is PassiveRole.DECOUPLING else smd_area
        all_smd.append(Footprint(req.name, area, MountKind.SMD))

    # 2: everything integrated in thin film.
    all_ip = chip_footprints()
    for req in requirements:
        real = realize_integrated(req, SUMMIT_PROCESS)
        all_ip.append(
            Footprint(req.name, real.area_mm2, MountKind.INTEGRATED)
        )

    # 3: passives optimized by the selector.
    report = optimize_passives(requirements, SUMMIT_PROCESS, "0402")
    optimized = chip_footprints()
    for decision in report.decisions:
        mount = (
            MountKind.INTEGRATED
            if decision.integrated
            else MountKind.SMD
        )
        optimized.append(
            Footprint(
                decision.requirement.name,
                decision.chosen.area_mm2,
                mount,
            )
        )
    smd_kept = report.smd_count
    print(
        f"Optimizer: {report.integrated_count} passives integrated, "
        f"{smd_kept} kept SMD, {report.area_saved_mm2:.0f} mm^2 saved "
        "versus the rejected alternatives."
    )
    for decision in report.decisions[:3]:
        print(f"  e.g. {decision.requirement.name}: {decision.reason}")
    decap_example = next(
        d for d in report.decisions
        if d.requirement.role is PassiveRole.DECOUPLING
    )
    print(f"  e.g. {decap_example.requirement.name}: "
          f"{decap_example.reason}")

    return [
        CandidateBuildUp(
            name="PCB / all SMD",
            footprints=all_smd,
            substrate_rule=PCB_RULE,
            flow_factory=flow_factory(
                PCB_COST_PER_CM2, len(requirements), "FR4"
            ),
            fixed_performance=1.0,
        ),
        CandidateBuildUp(
            name="thin film / all IP",
            footprints=all_ip,
            substrate_rule=THIN_FILM_RULE,
            flow_factory=flow_factory(
                THIN_FILM_COST_PER_CM2, 0, "thin-film"
            ),
            fixed_performance=1.0,
        ),
        CandidateBuildUp(
            name="passives optimized",
            footprints=optimized,
            substrate_rule=THIN_FILM_RULE,
            flow_factory=flow_factory(
                THIN_FILM_COST_PER_CM2, smd_kept, "thin-film"
            ),
            fixed_performance=1.0,
        ),
    ]


def main() -> None:
    print("Digital FPGA board: 82 passives, 3 build-ups\n")
    result = run_study(build_candidates())
    print()
    print(full_report(result))


if __name__ == "__main__":
    main()
