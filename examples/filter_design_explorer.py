#!/usr/bin/env python3
"""Explore the §4.1 filter physics with the circuits API directly.

Synthesises the paper's 175 MHz IF bandpass (2-pole Tchebyscheff) in the
three technologies the build-ups use, sweeps each with the MNA engine
and draws ASCII response curves — making the paper's performance scores
visible: the discrete block sails through, the mixed build is
borderline, the all-integrated build drowns in dissipation loss.

Also plots the Cauer image-reject filter showing its 1.225 GHz
transmission zero.

Run:
    python examples/filter_design_explorer.py
"""

import numpy as np

from repro.circuits.performance import measure_filter
from repro.circuits.qfactor import (
    DiscreteFilterBlockQModel,
    MixedQModel,
    SmdQModel,
    SummitQModel,
)
from repro.circuits.synthesis import build_bandpass_circuit, synthesize_bandpass
from repro.circuits.twoport import sweep
from repro.gps import data
from repro.gps.filters_chain import if_filter_spec, rf_image_reject_spec

TECHNOLOGIES = {
    "discrete SMD block (build-ups 1/2)": DiscreteFilterBlockQModel(),
    "all integrated    (build-up 3)": SummitQModel(),
    "SMD L + IP C      (build-up 4)": MixedQModel(
        inductor_model=SmdQModel(
            inductor_q_value=data.SMD_INDUCTOR_Q_AT_IF
        ),
        capacitor_model=SummitQModel(),
    ),
}


def ascii_plot(frequencies, losses, width=64, height=14, max_db=30.0):
    """Draw insertion loss (inverted: top = 0 dB) as ASCII art."""
    rows = [[" "] * width for _ in range(height)]
    for i in range(width):
        j = int(i * (len(losses) - 1) / (width - 1))
        loss = min(losses[j], max_db)
        row = int(loss / max_db * (height - 1))
        rows[row][i] = "*"
    lines = []
    for r, row in enumerate(rows):
        label = f"{r / (height - 1) * max_db:5.1f} |"
        lines.append(label + "".join(row))
    lines.append("      +" + "-" * width)
    lines.append(
        f"       {frequencies[0] / 1e6:.0f} MHz"
        + " " * (width - 20)
        + f"{frequencies[-1] / 1e6:.0f} MHz"
    )
    return "\n".join(lines)


def explore_if_filter() -> None:
    spec = if_filter_spec(1)
    print(f"IF filter: {spec.order}-pole {spec.family.value}, "
          f"{spec.center_hz / 1e6:.0f} MHz, BW {spec.bandwidth_hz / 1e6:.0f} "
          f"MHz, spec {spec.max_insertion_loss_db} dB\n")
    design = synthesize_bandpass(spec)
    print("Synthesised element values:")
    for resonator in design.resonators:
        print(
            f"  g{resonator.position} ({resonator.topology:>6}): "
            f"L = {resonator.inductance_h * 1e9:8.1f} nH, "
            f"C = {resonator.capacitance_f * 1e12:8.2f} pF"
        )
    print()
    for label, q_model in TECHNOLOGIES.items():
        circuit = build_bandpass_circuit(design, q_model)
        result = measure_filter(spec, circuit)
        band = sweep(circuit, 100e6, 250e6, points=200)
        verdict = "MEETS" if result.meets_spec else "misses"
        print(f"--- {label}: IL {result.insertion_loss_db:.2f} dB, "
              f"score {result.score:.2f} ({verdict} spec)")
        print(ascii_plot(band.frequencies_hz, band.insertion_loss_db))
        print()


def explore_rf_filter() -> None:
    spec = rf_image_reject_spec()
    print(f"RF image-reject filter: {spec.order}-pole {spec.family.value}, "
          f"{spec.center_hz / 1e9:.3f} GHz, zero at "
          f"{(spec.center_hz - spec.stop_offset_hz) / 1e9:.3f} GHz\n")
    design = synthesize_bandpass(spec)
    circuit = build_bandpass_circuit(design, SummitQModel())
    result = measure_filter(spec, circuit)
    band = sweep(circuit, 1.0e9, 2.2e9, points=200)
    print(f"Integrated realisation: IL {result.insertion_loss_db:.2f} dB "
          f"at L1, rejection {result.rejection_db:.1f} dB at the image")
    print(ascii_plot(band.frequencies_hz, band.insertion_loss_db,
                     max_db=50.0))


def main() -> None:
    explore_if_filter()
    explore_rf_filter()


if __name__ == "__main__":
    main()
