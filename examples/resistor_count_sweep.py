#!/usr/bin/env python3
"""Recreate the ">10 resistors and IP pays off" rule of thumb (ref [2]).

Sweeps the number of pull-up resistors on a small generic board and
costs an all-SMD build against an integrated-resistor build with the
MOE engine, printing the crossover — the quantitative form of the rule
of thumb the paper's introduction cites from Bleiweiss & Roelants.

Run:
    python examples/resistor_count_sweep.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))

from test_resistor_rule_of_thumb import cost_pair, find_crossover


def main() -> None:
    print("Generic board: one ASIC + n pull-up resistors")
    print(f"{'n':>4} | {'SMD build':>9} | {'IP build':>9} | cheaper")
    print("-" * 44)
    for n in (1, 2, 5, 8, 10, 12, 15, 20, 30, 50):
        smd, ip = cost_pair(n)
        winner = "IP" if ip < smd else "SMD"
        print(f"{n:>4} | {smd:>9.3f} | {ip:>9.3f} | {winner}")
    crossover = find_crossover()
    print(f"\nCrossover: integrated passives become cheaper at "
          f"n = {crossover} resistors.")
    print("Rule of thumb from the paper's ref [2]: 'for more than 10 "
          "resistors the IP solution is more cost effective'.")


if __name__ == "__main__":
    main()
