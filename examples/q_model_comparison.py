#!/usr/bin/env python3
"""Constant vs. skin-effect vs. tabulated Q on the GPS filter chain.

PR 3 made technology quality factors first-class *frequency-dependent*
models: a dispersive Q model is realised as circuit elements that
re-evaluate ``Q(f)`` at every stamped frequency, instead of freezing
the loss at the filter centre.  This example puts three models side by
side on the paper's integrated filter chain (build-up 3):

* the paper's constant-per-filter ``SummitQModel`` (Q evaluated once,
  at each filter's centre frequency);
* ``SkinEffectQModel`` — conductor loss, ``Q(f) = Q0 sqrt(f/f0)``;
* ``MEASURED_SUMMIT_TABLE`` — a tabulated, interpolated Q profile
  shaped after the published SUMMIT curve.

It prints each model's inductor-Q profile at the two band centres and
the resulting per-filter insertion losses and chain scores.

Run:
    PYTHONPATH=src python examples/q_model_comparison.py

Expected output (numbers are deterministic):

    Inductor Q at the band centres (100 nH for IF, 5 nH for RF):
      model                |  Q @ 175 MHz |  Q @ 1.575 GHz
      constant (SUMMIT)    |          7.6 |           21.1
      skin effect          |         16.7 |           50.2
      tabulated (measured) |          8.0 |           33.7

    Filter chain of build-up 3 (fully integrated), per model:
      model                |  RF loss dB |  IF1 loss dB |  chain score
      constant (SUMMIT)    |        2.93 |         9.91 |         0.45
      skin effect          |        1.52 |         4.54 |         0.99
      tabulated (measured) |        2.33 |         8.04 |         0.56

    The chain is scored by its worst stage; the IF filters dominate
    because integrated spirals are poor at 175 MHz in every model.
"""

from repro.circuits.performance import assess_chain
from repro.circuits.qfactor import (
    MEASURED_SUMMIT_TABLE,
    SkinEffectQModel,
    SummitQModel,
    inductor_q_profile,
)
from repro.gps.filters_chain import technology_assignments

MODELS = [
    ("constant (SUMMIT)", SummitQModel()),
    ("skin effect", SkinEffectQModel(q0_inductor=40.0, f0_hz=1.0e9)),
    ("tabulated (measured)", MEASURED_SUMMIT_TABLE),
]

IF_HZ = 175e6
RF_HZ = 1.575e9


def main() -> None:
    print("Inductor Q at the band centres (100 nH for IF, 5 nH for RF):")
    print(f"  {'model':<20} | {'Q @ 175 MHz':>12} | {'Q @ 1.575 GHz':>14}")
    for label, model in MODELS:
        q_if = inductor_q_profile(model, 100e-9, [IF_HZ])[0]
        q_rf = inductor_q_profile(model, 5e-9, [RF_HZ])[0]
        print(f"  {label:<20} | {q_if:>12.1f} | {q_rf:>14.1f}")

    print()
    print("Filter chain of build-up 3 (fully integrated), per model:")
    print(
        f"  {'model':<20} | {'RF loss dB':>11} | {'IF1 loss dB':>12} | "
        f"{'chain score':>12}"
    )
    for label, model in MODELS:
        chain = technology_assignments(3, q_model=model)
        result = assess_chain(chain)
        rf = result.by_name("image reject filter")
        if1 = result.by_name("IF filter 1")
        print(
            f"  {label:<20} | {rf.insertion_loss_db:>11.2f} | "
            f"{if1.insertion_loss_db:>12.2f} | {result.score:>12.2f}"
        )

    print()
    print(
        "The chain is scored by its worst stage; the IF filters dominate\n"
        "because integrated spirals are poor at 175 MHz in every model."
    )


if __name__ == "__main__":
    main()
