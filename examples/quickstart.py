#!/usr/bin/env python3
"""Quickstart: run the paper's GPS trade-off study in five lines.

Reproduces the decision of Scheffler & Troester (DATE 2000): given four
physical build-ups of a GPS receiver front end, which one should be
built?  Prints the Fig. 3 / Fig. 5 / Fig. 6 tables and the
recommendation.

Run:
    python examples/quickstart.py
"""

from repro.core.decision import full_report
from repro.gps.study import run_gps_study


def main() -> None:
    result = run_gps_study()
    print(full_report(result))


if __name__ == "__main__":
    main()
