#!/usr/bin/env python3
"""Decision support beyond the paper's single figure of merit.

Three extensions built on the reproduced machinery:

1. **Pareto analysis** — the paper folds the axes into one product; the
   multi-objective view proves the full-IP build-up is *dominated* by
   the passives-optimized one (worse on every axis), so no weighting
   could ever select it.
2. **Cost-driver sensitivity** — which Table 2 input moves each
   build-up's final cost most (elasticities by finite differences over
   the MOE evaluator).
3. **Rework economics** — the MOE fail branch routed to repair instead
   of scrap: when does reworking a failed GPS module pay?

Run:
    python examples/decision_support.py
"""

from repro.core.pareto import analyze_study
from repro.cost.moe import ReworkPolicy, TestStep, evaluate
from repro.cost.sensitivity import rank_cost_drivers
from repro.gps import data
from repro.gps.buildups import flow_for
from repro.gps.study import run_gps_study


def pareto_section() -> None:
    print("=" * 70)
    print("1. Pareto analysis of the four build-ups")
    print("=" * 70)
    result = run_gps_study()
    analysis = analyze_study(result)
    print("\nPareto-optimal build-ups:")
    for point in analysis.front:
        print(
            f"  {point.name:<24} perf={point.performance:.2f} "
            f"size={point.size_ratio:.2f} cost={point.cost_ratio:.2f}"
        )
    print("Dominated:")
    for point, dominator in analysis.dominated:
        print(f"  {point.name:<24} dominated by {dominator}")
    print(
        "\nThe full-IP build (solution 3) is dominated: the paper's "
        "conclusion that it 'suffers very hard' is weighting-independent."
    )


def sensitivity_section() -> None:
    print("\n" + "=" * 70)
    print("2. Cost drivers per build-up (elasticity of final cost)")
    print("=" * 70)
    for i in (1, 3):
        print(f"\n  build-up {i} ({data.IMPLEMENTATION_NAMES[i]}):")
        for driver in rank_cost_drivers(flow_for(i))[:5]:
            print(
                f"    {driver.label:<40} "
                f"elasticity {driver.elasticity:+.3f}"
            )


def rework_section() -> None:
    print("\n" + "=" * 70)
    print("3. Rework economics (MOE fail branch -> repair)")
    print("=" * 70)
    base = evaluate(flow_for(3)).final_cost_per_shipped
    print(f"\n  build-up 3 baseline (scrap on fail): {base:.2f}")
    print(f"  {'repair cost':>12} | {'success':>8} | {'final':>8} | verdict")
    for attempt_cost in (5.0, 25.0, 100.0, 300.0):
        for p_success in (0.5, 0.9):
            flow = flow_for(3)
            flow.steps = [
                TestStep(
                    step.node_id,
                    step.name,
                    step.test_cost,
                    step.coverage,
                    rework=ReworkPolicy(attempt_cost, p_success, 2),
                )
                if isinstance(step, TestStep)
                and step.name == "Functional test"
                else step
                for step in flow.steps
            ]
            final = evaluate(flow).final_cost_per_shipped
            verdict = "pays" if final < base else "does not pay"
            print(
                f"  {attempt_cost:>12.0f} | {p_success:>8.0%} | "
                f"{final:>8.2f} | {verdict}"
            )
    print(
        "\n  Repairing a ~600-unit module pays even for expensive "
        "rework; only near-module-cost repair loses."
    )


def main() -> None:
    pareto_section()
    sensitivity_section()
    rework_section()


if __name__ == "__main__":
    main()
